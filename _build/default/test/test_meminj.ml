(** Tests for memory extensions, injections and the [injp] frame
    conditions (paper §4.1–4.5, Figs. 8 and 9). These are the executable
    counterparts of the CKLR laws. *)

open Memory
open Memory.Values
open Memory.Memdata

let check = Alcotest.(check bool)

(* Source memory: two blocks. Target: the same blocks plus an extra one
   (as a compiler pass would create), with an injection mapping the
   source blocks identically. *)
let inj_setup () =
  let m1 = Mem.empty in
  let m1, a = Mem.alloc m1 0 16 in
  let m1, b = Mem.alloc m1 0 16 in
  let m2 = m1 in
  let m2, c = Mem.alloc m2 0 64 in
  let f = Meminj.id_below (Mem.nextblock m1) in
  (m1, m2, a, b, c, f)

let unit_tests =
  [
    Alcotest.test_case "id injection relates identical memories" `Quick
      (fun () ->
        let m1, _, _, _, _, f = inj_setup () in
        check "inject" true (Meminj.mem_inject f m1 m1));
    Alcotest.test_case "target may have extra blocks" `Quick (fun () ->
        let m1, m2, _, _, _, f = inj_setup () in
        check "inject" true (Meminj.mem_inject f m1 m2));
    Alcotest.test_case "val_inject undef below anything" `Quick (fun () ->
        let _, _, _, _, _, f = inj_setup () in
        check "undef" true (Meminj.val_inject f Vundef (Vint 3l)));
    Alcotest.test_case "val_inject relocates pointers" `Quick (fun () ->
        let f = Meminj.add 1 5 16 Meminj.empty in
        check "reloc" true (Meminj.val_inject f (Vptr (1, 4)) (Vptr (5, 20)));
        check "not" false (Meminj.val_inject f (Vptr (1, 4)) (Vptr (5, 4))));
    Alcotest.test_case "unmapped source block breaks val_inject" `Quick
      (fun () ->
        check "unmapped" false
          (Meminj.val_inject Meminj.empty (Vptr (1, 0)) (Vptr (1, 0))));
    Alcotest.test_case "injection with offset" `Quick (fun () ->
        (* Map source block a at offset 8 into target block c. *)
        let m1 = Mem.empty in
        let m1, a = Mem.alloc m1 0 8 in
        let m1 = Option.get (Mem.store Mint32 m1 a 0 (Vint 77l)) in
        let m2 = Mem.empty in
        let m2, c = Mem.alloc m2 0 32 in
        let m2 = Option.get (Mem.store Mint32 m2 c 8 (Vint 77l)) in
        let f = Meminj.add a c 8 Meminj.empty in
        check "inject" true (Meminj.mem_inject f m1 m2));
    Alcotest.test_case "content mismatch breaks injection" `Quick (fun () ->
        let m1, m2, a, _, _, f = inj_setup () in
        let m1 = Option.get (Mem.store Mint32 m1 a 0 (Vint 1l)) in
        check "mismatch" false (Meminj.mem_inject f m1 m2));
    Alcotest.test_case "extends: refinement of contents" `Quick (fun () ->
        let m1 = Mem.empty in
        let m1, a = Mem.alloc m1 0 8 in
        (* Source holds undef; target holds a defined value. *)
        let m2 = Option.get (Mem.store Mint32 m1 a 0 (Vint 9l)) in
        check "extends" true (Meminj.mem_extends m1 m2);
        check "not-reverse" false (Meminj.mem_extends m2 m1));
    Alcotest.test_case "extends requires same block structure" `Quick
      (fun () ->
        let m1, m2, _, _, _, _ = inj_setup () in
        check "nextblock" false (Meminj.mem_extends m1 m2));
    Alcotest.test_case "compose injections" `Quick (fun () ->
        let f = Meminj.add 1 2 8 Meminj.empty in
        let g = Meminj.add 2 3 16 Meminj.empty in
        check "compose" true
          (Meminj.apply (Meminj.compose f g) 1 = Some (3, 24)));
    Alcotest.test_case "incl" `Quick (fun () ->
        let f = Meminj.add 1 1 0 Meminj.empty in
        let f' = Meminj.add 2 2 0 f in
        check "incl" true (Meminj.incl f f');
        check "not-incl" false (Meminj.incl f' f));
  ]

(* Fig. 9: the injp accessibility relation protects unmapped source
   regions and out-of-reach target regions across external calls. *)
let injp_tests =
  [
    Alcotest.test_case "injp_acc allows growth" `Quick (fun () ->
        let m1, m2, _, _, _, f = inj_setup () in
        let w = Meminj.injp_world f m1 m2 in
        (* The "call" allocates new blocks on both sides. *)
        let m1', na = Mem.alloc m1 0 8 in
        let m2', nb = Mem.alloc m2 0 8 in
        let f' = Meminj.add na nb 0 f in
        check "acc" true (Meminj.injp_acc w (Meminj.injp_world f' m1' m2')));
    Alcotest.test_case "injp_acc rejects writes to unmapped source" `Quick
      (fun () ->
        (* Source block [b] is NOT mapped: the environment must not touch
           it (Example 4.4: SimplLocals' removed locals). *)
        let m1 = Mem.empty in
        let m1, a = Mem.alloc m1 0 16 in
        let m1, b = Mem.alloc m1 0 16 in
        let f = Meminj.add a a 0 Meminj.empty in
        let w = Meminj.injp_world f m1 m1 in
        let m1' = Option.get (Mem.store Mint32 m1 b 0 (Vint 13l)) in
        check "rejected" false (Meminj.injp_acc w (Meminj.injp_world f m1' m1)));
    Alcotest.test_case "injp_acc rejects writes out of reach" `Quick
      (fun () ->
        (* Target block [c] has no source antecedent: protected. *)
        let m1, m2, _, _, c, f = inj_setup () in
        let w = Meminj.injp_world f m1 m2 in
        let m2' = Option.get (Mem.store Mint32 m2 c 0 (Vint 13l)) in
        check "rejected" false (Meminj.injp_acc w (Meminj.injp_world f m1 m2')));
    Alcotest.test_case "injp_acc allows writes in the image" `Quick (fun () ->
        let m1, m2, a, _, _, f = inj_setup () in
        let w = Meminj.injp_world f m1 m2 in
        let m1' = Option.get (Mem.store Mint32 m1 a 0 (Vint 13l)) in
        let m2' = Option.get (Mem.store Mint32 m2 a 0 (Vint 13l)) in
        check "allowed" true (Meminj.injp_acc w (Meminj.injp_world f m1' m2')));
    Alcotest.test_case "injp_acc rejects shrinking the mapping" `Quick
      (fun () ->
        let m1, m2, _, _, _, f = inj_setup () in
        let w = Meminj.injp_world f m1 m2 in
        check "rejected" false
          (Meminj.injp_acc w (Meminj.injp_world Meminj.empty m1 m2)));
  ]

(* Fig. 8 frame conditions, checked as properties: memory operations take
   related states to related states. *)
let gen_int32 = QCheck.map Int32.of_int QCheck.int

let frame_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck.Test.make ~name:"store preserves injection (Fig. 8)" ~count:200
        (QCheck.pair gen_int32 (QCheck.int_bound 3)) (fun (v, slot) ->
          let m1, m2, a, _, _, f = inj_setup () in
          let ofs = slot * 4 in
          match
            (Mem.store Mint32 m1 a ofs (Vint v), Mem.store Mint32 m2 a ofs (Vint v))
          with
          | Some m1', Some m2' -> Meminj.mem_inject f m1' m2'
          | _ -> false);
      QCheck.Test.make ~name:"alloc preserves injection under growth" ~count:100
        (QCheck.int_bound 32) (fun sz ->
          let m1, m2, _, _, _, f = inj_setup () in
          let m1', na = Mem.alloc m1 0 sz in
          let m2', nb = Mem.alloc m2 0 sz in
          let f' = Meminj.add na nb 0 f in
          Meminj.incl f f' && Meminj.mem_inject f' m1' m2');
      QCheck.Test.make ~name:"free preserves injection" ~count:100
        QCheck.unit (fun () ->
          let m1, m2, a, _, _, f = inj_setup () in
          match (Mem.free m1 a 0 16, Mem.free m2 a 0 16) with
          | Some m1', Some m2' -> Meminj.mem_inject f m1' m2'
          | _ -> false);
      QCheck.Test.make ~name:"load from injected memories relates" ~count:200
        (QCheck.pair gen_int32 (QCheck.int_bound 3)) (fun (v, slot) ->
          let m1, m2, a, _, _, f = inj_setup () in
          let ofs = slot * 4 in
          let m1 = Option.get (Mem.store Mint32 m1 a ofs (Vint v)) in
          let m2 = Option.get (Mem.store Mint32 m2 a ofs (Vint v)) in
          match (Mem.load Mint32 m1 a ofs, Mem.load Mint32 m2 a ofs) with
          | Some v1, Some v2 -> Meminj.val_inject f v1 v2
          | _ -> false);
      QCheck.Test.make ~name:"extends preserved by parallel store" ~count:200
        gen_int32 (fun v ->
          let m1 = Mem.empty in
          let m1, a = Mem.alloc m1 0 16 in
          let m2 = Option.get (Mem.store Mint32 m1 a 8 (Vint 5l)) in
          (* m1 extends into m2 (m2 has more defined content). *)
          QCheck.assume (Meminj.mem_extends m1 m2);
          match (Mem.store Mint32 m1 a 0 (Vint v), Mem.store Mint32 m2 a 0 (Vint v)) with
          | Some m1', Some m2' -> Meminj.mem_extends m1' m2'
          | _ -> false);
    ]

let suite = ("meminj", unit_tests @ injp_tests @ frame_tests)
