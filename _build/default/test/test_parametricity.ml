(** Parametricity in CKLRs (paper, Theorem 4.3): language semantics are
    related to themselves under any CKLR.

    The executable instance: build the {e same} program against two
    different symbol tables — the second with an extra dummy symbol
    prepended, so that every global block is shifted by one. The two
    global environments are related by the injection
    [f(b) = b + 1] (for global blocks), and running both semantics on
    [f]-related queries must produce [f]-related answers. This exercises
    the actual injection machinery (block renaming) end to end, not just
    the identity fragment. *)

open Support
open Memory
open Memory.Mtypes
open Memory.Values
open Iface
open Iface.Li

let check = Alcotest.(check bool)
let fuel = 1_000_000

let src =
  {|
int table[4] = {10, 20, 30, 40};
int scale = 3;

int lookup(int i) {
  return table[i & 3] * scale;
}

int sum(int n) {
  int s = 0;
  for (int i = 0; i < n; i++) s = s + lookup(i);
  return s;
}
|}

let program = Cfrontend.Cparser.parse_program src
let names = Ast.prog_defs_names program

(* Symbol tables: the original, and one with a dummy symbol first. *)
let symbols1 = names
let symbols2 = Ident.intern "__dummy" :: names

(* The injection relating the two instantiations: global block [b] of the
   first maps to block [b + 1] of the second. *)
let shift_inj m1 =
  let rec go b f =
    if b >= Mem.nextblock m1 then f else go (b + 1) (Meminj.add b (b + 1) 0 f)
  in
  go 1 Meminj.empty

let query symbols entry args =
  let ge = Genv.globalenv ~symbols program in
  let m = Option.get (Genv.init_mem ~symbols program) in
  { cq_vf = Genv.symbol_address ge (Ident.intern entry) 0;
    cq_sg = { sig_args = [ Tint ]; sig_res = Some Tint };
    cq_args = args; cq_mem = m }

(* Check that queries are actually f-related, then run both and check the
   answers relate. *)
let parametricity_instance ~(mk_sem : Ident.t list -> ('s, c_query, c_reply, c_query, c_reply) Core.Smallstep.lts)
    ~entry ~(n : int) : bool =
  let q1 = query symbols1 entry [ Vint (Int32.of_int n) ] in
  let q2 = query symbols2 entry [ Vint (Int32.of_int n) ] in
  let f = shift_inj q1.cq_mem in
  (* Sanity: the initial memories and function values are f-related. *)
  Meminj.val_inject f q1.cq_vf q2.cq_vf
  && Meminj.mem_inject f q1.cq_mem q2.cq_mem
  &&
  let l1 = mk_sem symbols1 in
  let l2 = mk_sem symbols2 in
  let o1 = Core.Smallstep.run ~fuel l1 ~oracle:(fun _ -> None) q1 in
  let o2 = Core.Smallstep.run ~fuel l2 ~oracle:(fun _ -> None) q2 in
  match (o1, o2) with
  | Core.Smallstep.Final (_, r1), Core.Smallstep.Final (_, r2) ->
    (* Answers related at an accessible world: results inject under the
       grown mapping (new blocks allocated in lockstep). *)
    let f' = Core.Cklr.grow_meminj f r1.cr_mem r2.cr_mem in
    ignore f';
    Meminj.val_inject f r1.cr_res r2.cr_res
  | _ -> false

let clight_sem symbols = Cfrontend.Clight.semantics ~symbols program

let rtl_sem =
  let rtl1 =
    (Errors.get (Driver.Compiler.compile program)).Driver.Compiler.rtl
  in
  fun symbols -> Middle.Rtl.semantics ~symbols rtl1

let unit_tests =
  [
    Alcotest.test_case "queries are inj-related under the shift" `Quick
      (fun () ->
        let q1 = query symbols1 "sum" [ Vint 4l ] in
        let q2 = query symbols2 "sum" [ Vint 4l ] in
        let f = shift_inj q1.cq_mem in
        check "vf" true (Meminj.val_inject f q1.cq_vf q2.cq_vf);
        check "mem" true (Meminj.mem_inject f q1.cq_mem q2.cq_mem);
        check "vf not eq-related" false (q1.cq_vf = q2.cq_vf));
    Alcotest.test_case "Thm 4.3 for Clight (inj)" `Quick (fun () ->
        check "related runs" true
          (parametricity_instance ~mk_sem:clight_sem ~entry:"sum" ~n:5));
    Alcotest.test_case "Thm 4.3 for RTL (inj)" `Quick (fun () ->
        check "related runs" true
          (parametricity_instance ~mk_sem:rtl_sem ~entry:"sum" ~n:5));
    Alcotest.test_case "Thm 4.3 for Asm (inj)" `Quick (fun () ->
        (* At the A level, queries are register files: shift the function
           pointer and memory, run, compare result registers. *)
        let asm = (Errors.get (Driver.Compiler.compile program)).Driver.Compiler.asm in
        let run symbols =
          let q = query symbols "sum" [ Vint 4l ] in
          let l = Backend.Asm.semantics ~symbols asm in
          Driver.Runners.run_a_level l ~fuel q
        in
        match (run symbols1, run symbols2) with
        | Ok (Core.Smallstep.Final (_, r1)), Ok (Core.Smallstep.Final (_, r2)) ->
          check "same int result" true (r1.cr_res = r2.cr_res && r1.cr_res <> Vundef)
        | _ -> Alcotest.fail "expected two final runs");
  ]

let prop_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck.Test.make ~name:"Thm 4.3 Clight over random inputs" ~count:20
        (QCheck.int_bound 30) (fun n ->
          parametricity_instance ~mk_sem:clight_sem ~entry:"sum" ~n);
      QCheck.Test.make ~name:"Thm 4.3 RTL over random inputs" ~count:20
        (QCheck.int_bound 30) (fun n ->
          parametricity_instance ~mk_sem:rtl_sem ~entry:"lookup" ~n);
    ]

let suite = ("parametricity", unit_tests @ prop_tests)
