(** End-to-end differential tests of the full compiler (the empirical
    counterpart of Theorem 3.8): for each program, every level of the
    pipeline — activated through the marshaled conventions [CL],
    [CL·LM], [CA] — must refine the Clight behavior. *)

open Testlib.Testutil

let basic =
  [
    diff_case "constant" "int main(void) { return 41 + 1; }" 42l;
    diff_case "call" "int f(int x) { return x * 2; } int main(void) { return f(21); }" 42l;
    diff_case "fib"
      "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); } int main(void) { return fib(12); }"
      144l;
    diff_case "mutual recursion"
      "int odd(int n); int even(int n) { if (n == 0) return 1; return odd(n-1); } int odd(int n) { if (n == 0) return 0; return even(n-1); } int main(void) { return even(9) * 10 + odd(9); }"
      1l;
    diff_case "loops and accumulation"
      "int main(void) { int s = 0; for (int i = 1; i <= 100; i++) s += i; return s; }"
      5050l;
    diff_case "nested control"
      "int main(void) { int s = 0; for (int i = 0; i < 10; i++) { if (i % 3 == 0) continue; int j = 0; while (j < i) { s++; j++; } } return s; }"
      27l;
  ]

let calling_convention =
  [
    diff_case "eight int args (stack passing)"
      "int f(int a,int b,int c,int d,int e,int g,int h,int i) { return a+2*b+3*c+4*d+5*e+6*g+7*h+8*i; } int main(void) { return f(1,2,3,4,5,6,7,8); }"
      204l;
    diff_case "ten int args"
      "int f(int a,int b,int c,int d,int e,int g,int h,int i,int j,int k) { return a+b+c+d+e+g+h+i+j+k; } int main(void) { return f(1,2,3,4,5,6,7,8,9,10); }"
      55l;
    diff_case "mixed int and float args"
      "int f(int a, double x, int b, double y) { return a + b + (int)(x + y); } int main(void) { return f(1, 2.5, 3, 4.5); }"
      11l;
    diff_case "many float args (uses float arg registers)"
      "int f(double a,double b,double c,double d,double e) { return (int)(a+b+c+d+e); } int main(void) { return f(1.0,2.0,3.0,4.0,5.0); }"
      15l;
    diff_case "stack args both directions"
      "int g(int a,int b,int c,int d,int e,int f0,int h,int i) { return h * 10 + i; } int callg(void) { return g(0,0,0,0,0,0,3,7); } int main(void) { return callg(); }"
      37l;
    diff_case "callee-save pressure"
      "int id(int x) { return x; } int main(void) { int a = id(1); int b = id(2); int c = id(3); int d = id(4); int e = id(5); int f = id(6); return a + 10*b + 100*c + 1000*d + 10000*e + 100000*f; }"
      654321l;
    diff_case "register pressure with spilling"
      "int main(void) { int a=1,b=2,c=3,d=4,e=5,f=6,g=7,h=8,i=9,j=10,k=11,l=12,m=13,n=14,o=15,p=16; return a+b+c+d+e+f+g+h+i+j+k+l+m+n+o+p + a*p + b*o + c*n; }"
      224l;
    diff_case "tail-call shape"
      "int iter(int n, int acc) { if (n == 0) return acc; return iter(n - 1, acc + n); } int main(void) { return iter(1000, 0); }"
      500500l;
  ]

let memory_programs =
  [
    diff_case "local array in memory"
      "int main(void) { int a[8]; for (int i = 0; i < 8; i++) a[i] = i * i; int s = 0; for (int i = 0; i < 8; i++) s += a[i]; return s; }"
      140l;
    diff_case "pass array to function"
      "int sum(int *a, int n) { int s = 0; for (int i = 0; i < n; i++) s += a[i]; return s; } int main(void) { int a[5]; for (int i = 0; i < 5; i++) a[i] = i + 1; return sum(a, 5); }"
      15l;
    diff_case "write through pointer parameter"
      "void fill(int *p, int n, int v) { for (int i = 0; i < n; i++) p[i] = v; } int main(void) { int a[4]; fill(a, 4, 9); return a[0] + a[3]; }"
      18l;
    diff_case "global state across calls"
      "int counter = 0; void tick(void) { counter++; } int main(void) { for (int i = 0; i < 7; i++) tick(); return counter; }"
      7l;
    diff_case "swap via pointers"
      "void swap(int *a, int *b) { int t = *a; *a = *b; *b = t; } int main(void) { int x = 3, y = 4; swap(&x, &y); return x * 10 + y; }"
      43l;
    diff_case "byte-size data"
      "char buf[4]; int main(void) { buf[0] = 1; buf[1] = 2; buf[2] = 3; buf[3] = 4; return buf[0] + 256 * buf[3]; }"
      1025l;
    diff_case "strings of shorts"
      "short s[3]; int main(void) { s[0] = 1000; s[1] = -1000; s[2] = 30000; return s[0] + s[1] + s[2]; }"
      30000l;
    diff_case "aliasing through pointers"
      "int main(void) { int x = 1; int *p = &x; int *q = p; *q = 5; return *p; }"
      5l;
    diff_case "address arithmetic"
      "int a[10]; int main(void) { int *p = a; for (int i = 0; i < 10; i++) *(p + i) = i; return a[7]; }"
      7l;
  ]

let arithmetic =
  [
    diff_case "signed overflow wraps"
      "int main(void) { int x = 2147483647; return x + 1 == -2147483647 - 1; }" 1l;
    diff_case "64-bit arithmetic"
      "int main(void) { long a = 123456789L; long b = 987654321L; return (int)((a * b) % 1000L); }"
      269l;
    diff_case "mixed width"
      "int main(void) { int i = -1; long l = i; return l < 0; }" 1l;
    diff_case "unsigned wraparound"
      "int main(void) { unsigned u = 0; u = u - 1; return u > 1000000u; }" 1l;
    diff_case "float to int and back"
      "int main(void) { double d = 0.0; for (int i = 0; i < 10; i++) d = d + 0.5; return (int) d; }"
      5l;
    diff_case "single precision rounding"
      "int main(void) { float f = 16777216.0f; float g = f + 1.0f; return f == g; }" 1l;
    diff_case "integer division rounding"
      "int main(void) { return (-7) / 2 * 10 + (-7) % 2; }" (-31l);
    diff_case "comparisons on longs"
      "int main(void) { long a = 1L << 40; long b = 1L << 41; return (a < b) + (b < a) * 2; }" 1l;
  ]

(* Run key workloads with optimizations disabled as well: the optional
   passes (Table 3's †) must not be needed for correctness. *)
let no_optim =
  [
    diff_case ~options:Driver.Compiler.no_optims "no-optim fib"
      "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); } int main(void) { return fib(10); }"
      55l;
    diff_case ~options:Driver.Compiler.no_optims "no-optim stack args"
      "int f(int a,int b,int c,int d,int e,int g,int h,int i) { return h*10+i; } int main(void) { return f(0,0,0,0,0,0,4,2); }"
      42l;
    diff_case ~options:Driver.Compiler.no_optims "no-optim arrays"
      "int main(void) { int a[4]; a[0]=1; a[1]=2; a[2]=3; a[3]=4; return a[0]+a[1]*a[2]+a[3]; }"
      11l;
  ]

(* Optimization-sensitive shapes: constant folding, CSE, dead code — the
   optimized pipeline must still refine the source. *)
let optim_shapes =
  [
    diff_case "constant folding fodder"
      "int main(void) { int x = 3 * 4 + 5; int y = x * 0; return x + y + (10 / 2); }" 22l;
    diff_case "common subexpressions"
      "int main(void) { int a = 7, b = 9; int x = a * b + 1; int y = a * b + 2; return x + y; }" 129l;
    diff_case "dead stores"
      "int main(void) { int x = 1; x = 2; x = 3; int dead = 100; dead = dead * 2; return x; }" 3l;
    diff_case "branch folding"
      "int main(void) { if (1 == 1) return 5; return 6; }" 5l;
    diff_case "inlinable leaf"
      "int sq(int x) { return x * x; } int main(void) { return sq(3) + sq(4); }" 25l;
    diff_case "loop-carried CSE hazard"
      "int g = 0; int bump(void) { g = g + 1; return g; } int main(void) { int a = bump(); int b = bump(); return a * 10 + b; }" 12l;
  ]

(* Stack-argument passing in every argument class. *)
let stack_arg_classes =
  [
    diff_case "float args spill to the stack"
      "double f(double a, double b, double c, double d, double e, double g) { return a + 2.0*b + 3.0*c + 4.0*d + 5.0*e + 6.0*g; } int main(void) { return (int) f(1.0, 2.0, 3.0, 4.0, 5.0, 6.0); }"
      91l;
    diff_case "long args spill to the stack"
      "long f(long a, long b, long c, long d, long e, long g, long h, long i) { return h * 100L + i; } int main(void) { return (int) f(1L,2L,3L,4L,5L,6L,7L,8L); }"
      708l;
    diff_case "mixed int/float args exhaust both register classes"
      "int f(int a, double x, int b, double y, int c, double z, int d, double w, int e, double v, int g, double u) { return a+b+c+d+e+g + (int)(x+y+z+w+v+u); } int main(void) { return f(1, 1.5, 2, 2.5, 3, 3.5, 4, 4.5, 5, 5.5, 6, 6.5); }"
      45l;
    diff_case "single-precision args spill to the stack"
      "float f(float a, float b, float c, float d, float e, float g) { return a + g; } int main(void) { return (int) f(1.0f,2.0f,3.0f,4.0f,5.0f,40.0f); }"
      41l;
    diff_case "pointer args on the stack"
      "int f(int a,int b,int c,int d,int e,int g,int *p,int *q) { return *p + *q; } int x = 30; int y = 12; int main(void) { return f(0,0,0,0,0,0,&x,&y); }"
      42l;
  ]

(* Regressions found by the random differential fuzzer. *)
let regressions =
  [
    (* Local stack slots must survive calls: the caller's spill slots and
       outgoing areas belong to its activation and are restored when it
       resumes (LTL/Linear [merge_slots]); an early version rebuilt the
       locset from registers only, losing every spilled value across
       calls. *)
    diff_case "spilled values survive nested calls"
      "int f0(int p0, int p1, int p2, int p3, int p4, int p5, int p6) { return p0 + p3 / (p6 | 1); }\n\
       int f1(int a, int b) { int r = f0(1, 2, 3, f0(a, b, 1, 2, 3, 4, 5), 5, 6, f0(b, a, 9, 9, 9, 9, 9)); return r + a + b; }\n\
       int main(void) { return f1(10, 20); }"
      31l;
    diff_case "spill slot live across two calls"
      "int id(int x);\nint use(int x) { return id(x); }\nint id(int x) { return x; }\n\
       int main(void) { int a = use(1); int b = use(2); int c = use(3); int d = use(4); int e = use(5); int f = use(6); int h = use(7); int i = use(8); int j = use(9); int k = use(10); int l = use(11); int m = use(12); return a+b+c+d+e+f+h+i+j+k+l+m; }"
      78l;
  ]

let suite =
  ( "pipeline",
    basic @ calling_convention @ memory_programs @ arithmetic @ no_optim
    @ optim_shapes @ stack_arg_classes @ regressions )
