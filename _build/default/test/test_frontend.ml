(** Tests for the C frontend: lexer, parser/elaborator, and the Clight
    interpreter. *)

open Support
open Memory.Values
open Iface
open Iface.Li
open Cfrontend

let check = Alcotest.(check bool)

(** Run [main] of a source string in the Clight interpreter. *)
let run_main ?(fuel = 1_000_000) src : (int32, string) result =
  let p = Cparser.parse_program src in
  let symbols = Ast.prog_defs_names p in
  let l = Clight.semantics ~symbols p in
  let ge = Genv.globalenv ~symbols p in
  match (Genv.find_symbol ge (Ident.intern "main"), Genv.init_mem ~symbols p) with
  | Some b, Some m -> (
    let q =
      { cq_vf = Vptr (b, 0); cq_sg = Memory.Mtypes.signature_main;
        cq_args = []; cq_mem = m }
    in
    match Core.Smallstep.run ~fuel l ~oracle:(fun _ -> None) q with
    | Core.Smallstep.Final (_, { cr_res = Vint n; _ }) -> Ok n
    | o ->
      Error
        (Pp_util.to_string (Core.Smallstep.pp_outcome (fun _ _ -> ())) o))
  | _ -> Error "no main"

let expect name src result =
  Alcotest.test_case name `Quick (fun () ->
      match run_main src with
      | Ok n -> Alcotest.(check int32) name result n
      | Error e -> Alcotest.failf "%s: %s" name e)

let expect_wrong name src =
  Alcotest.test_case name `Quick (fun () ->
      match run_main src with
      | Ok n -> Alcotest.failf "%s: expected UB, got %ld" name n
      | Error _ -> ())

let expect_parse_error name src =
  Alcotest.test_case name `Quick (fun () ->
      match Cparser.parse_program src with
      | exception Cparser.Parse_error _ -> ()
      | exception Clexer.Lex_error _ -> ()
      | _ -> Alcotest.failf "%s: expected a parse error" name)

let lexer_tests =
  [
    Alcotest.test_case "integer literals" `Quick (fun () ->
        let lx = Clexer.tokenize "42 0x2A 7L 3u 'A'" in
        let rec toks acc =
          match Clexer.peek lx with
          | Clexer.EOF -> List.rev acc
          | t ->
            Clexer.advance lx;
            toks (t :: acc)
        in
        match toks [] with
        | [ INT_LIT (42L, `I); INT_LIT (42L, `I); INT_LIT (7L, `L);
            INT_LIT (3L, `U); INT_LIT (65L, `I) ] ->
          ()
        | _ -> Alcotest.fail "unexpected tokens");
    Alcotest.test_case "comments are skipped" `Quick (fun () ->
        let lx = Clexer.tokenize "/* multi \n line */ x // rest\n y" in
        check "first" true (Clexer.peek lx = Clexer.IDENT "x"));
    Alcotest.test_case "float literals" `Quick (fun () ->
        let lx = Clexer.tokenize "1.5 2e3 4.0f" in
        check "double" true (Clexer.peek lx = Clexer.FLOAT_LIT (1.5, `D)));
    Alcotest.test_case "multi-char operators" `Quick (fun () ->
        let lx = Clexer.tokenize "<<= << <= <" in
        check "three" true (Clexer.peek lx = Clexer.PUNCT "<<="));
  ]

let expr_tests =
  [
    expect "precedence * over +" "int main(void) { return 2 + 3 * 4; }" 14l;
    expect "parens" "int main(void) { return (2 + 3) * 4; }" 20l;
    expect "unary minus" "int main(void) { return -5 + 3; }" (-2l);
    expect "bitwise" "int main(void) { return (0xF0 | 0x0F) & 0x3C; }" 0x3Cl;
    expect "shift" "int main(void) { return 1 << 10; }" 1024l;
    expect "signed shr" "int main(void) { return -8 >> 1; }" (-4l);
    expect "unsigned div" "int main(void) { unsigned x = 4000000000u; return x / 1000000000u; }" 4l;
    expect "comparison chains to int" "int main(void) { return (3 < 5) + (5 < 3); }" 1l;
    expect "logical and shortcut" "int main(void) { int x = 0; (x != 0) && (1 / x > 0); return 7; }" 7l;
    expect "logical or shortcut" "int main(void) { int x = 0; (x == 0) || (1 / x > 0); return 8; }" 8l;
    expect "ternary" "int main(void) { return 1 ? 10 : 20; }" 10l;
    expect "nested ternary" "int main(void) { int a = 2; return a == 1 ? 10 : a == 2 ? 20 : 30; }" 20l;
    expect "modulo" "int main(void) { return 17 % 5; }" 2l;
    expect "negative modulo" "int main(void) { return -17 % 5; }" (-2l);
    expect "char arithmetic" "int main(void) { char c = 'A'; return c + 1; }" 66l;
    expect "char overflow wraps via store" "int main(void) { char c = 300; return c; }" 44l;
    expect "short truncation" "int main(void) { short s = 70000; return s; }" 4464l;
    expect "long arithmetic" "int main(void) { long x = 1L << 40; return (int)(x >> 38); }" 4l;
    expect "cast double to int" "int main(void) { double d = 3.99; return (int) d; }" 3l;
    expect "double arithmetic" "int main(void) { double d = 1.5 * 4.0; return (int) d; }" 6l;
    expect "float (single) arithmetic" "int main(void) { float f = 2.5f; return (int)(f * 2.0f); }" 5l;
    expect "sizeof int" "int main(void) { return (int) sizeof(int); }" 4l;
    expect "sizeof array" "int arr[10]; int main(void) { return (int) sizeof(arr); }" 40l;
    expect "sizeof pointer" "int main(void) { return (int) sizeof(int*); }" 8l;
    expect "compound assignment" "int main(void) { int x = 5; x *= 3; x -= 1; return x; }" 14l;
    expect "increment" "int main(void) { int x = 5; x++; x++; return x; }" 7l;
    expect "unsigned comparison" "int main(void) { unsigned a = 0; return (a - 1u) > a; }" 1l;
  ]

let stmt_tests =
  [
    expect "while loop" "int main(void) { int i = 0, s = 0; while (i < 10) { s += i; i++; } return s; }" 45l;
    expect "for with break" "int main(void) { int s = 0; for (int i = 0; i < 100; i++) { if (i == 5) break; s += i; } return s; }" 10l;
    expect "for with continue" "int main(void) { int s = 0; for (int i = 0; i < 10; i++) { if (i % 2) continue; s += i; } return s; }" 20l;
    expect "nested loops" "int main(void) { int s = 0; for (int i = 0; i < 4; i++) for (int j = 0; j < 4; j++) if (i == j) s++; return s; }" 4l;
    expect "multi declarator" "int main(void) { int a = 1, b = 2, c = 3; return a + b + c; }" 6l;
    expect "shadowing by inner scope" "int main(void) { int x = 1; { int y = 10; x = x + y; } return x; }" 11l;
    expect "void return" "void nop(void) { return; } int main(void) { nop(); return 3; }" 3l;
    expect "early return" "int f(int x) { if (x > 0) return 1; return 0; } int main(void) { return f(5) + f(-5); }" 1l;
  ]

let data_tests =
  [
    expect "global init" "int g = 41; int main(void) { return g + 1; }" 42l;
    expect "global mutation" "int g; int main(void) { g = 7; g += 3; return g; }" 10l;
    expect "global array walk"
      "int a[5] = {5, 4, 3, 2, 1}; int main(void) { int s = 0; for (int i = 0; i < 5; i++) s = s * 10 + a[i]; return s; }"
      54321l;
    expect "partial array init" "int a[4] = {9}; int main(void) { return a[0] + a[1] + a[2] + a[3]; }" 9l;
    expect "local array + pointer"
      "int main(void) { int a[3]; int *p = a; p[0] = 1; *(p+1) = 2; a[2] = 3; return a[0]+a[1]+a[2]; }"
      6l;
    expect "address-of local"
      "void set(int *p) { *p = 9; } int main(void) { int x = 0; set(&x); return x; }"
      9l;
    expect "pointer to pointer"
      "int main(void) { int x = 5; int *p = &x; int **q = &p; **q = 8; return x; }"
      8l;
    expect "pointer difference"
      "int a[8]; int main(void) { int *p = &a[6]; int *q = &a[2]; return (int)(p - q); }"
      4l;
    expect "const global" "const int k = 13; int main(void) { return k; }" 13l;
    expect "long global" "long g = 1000000000000L; int main(void) { return (int)(g / 1000000000L); }" 1000l;
    expect "double global" "double d = 2.5; int main(void) { return (int)(d * 4.0); }" 10l;
    expect "2d array"
      "int m[2][3] = {{1,2,3},{4,5,6}}; int main(void) { int s = 0; for (int i=0;i<2;i++) for (int j=0;j<3;j++) s += m[i][j]; return s; }"
      21l;
    expect "function pointer"
      "int add1(int x) { return x + 1; } int main(void) { int (*f)(int); f = add1; return f(41); }"
      42l;
    expect "addrof global in initializer"
      "int x = 3; int *p = &x; int main(void) { return *p; }" 3l;
  ]

let ub_tests =
  [
    expect_wrong "division by zero" "int main(void) { int z = 0; return 1 / z; }";
    expect_wrong "signed div overflow" "int main(void) { int a = -2147483647 - 1; int b = -1; return a / b; }";
    expect_wrong "null dereference" "int main(void) { int *p = 0; return *p; }";
    expect_wrong "out-of-bounds read" "int a[2]; int main(void) { int i = 5; return a[i]; }";
    expect_wrong "uninitialized read used in branch" "int main(void) { int x; if (x) return 1; return 0; }";
    expect_wrong "oversized shift" "int main(void) { int n = 40; return 1 << n; }";
  ]

let parse_error_tests =
  [
    expect_parse_error "missing semicolon" "int main(void) { return 1 }";
    expect_parse_error "unknown identifier" "int main(void) { return nope; }";
    expect_parse_error "unbalanced paren" "int main(void) { return (1 + 2; }";
    expect_parse_error "call arity" "int f(int x) { return x; } int main(void) { return f(1, 2); }";
    expect_parse_error "assign to rvalue" "int main(void) { 3 = 4; return 0; }";
    expect_parse_error "bad character" "int main(void) { return 1 @ 2; }";
  ]

let suite =
  ( "frontend",
    lexer_tests @ expr_tests @ stmt_tests @ data_tests @ ub_tests
    @ parse_error_tests )
