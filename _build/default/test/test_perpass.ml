(** Per-pass co-execution: each adjacent pair of pipeline levels is
    co-executed under (the reply relation of) its own Table 3 simulation
    convention — not just result values, but the memory relation too:

    - [id ↠ id] passes (Cshmgen, Renumber, Linearize, CleanupLabels):
      final memories must be {e equal};
    - [ext]-based passes (Selection, RTLgen, Tailcall, Constprop, CSE,
      Deadcode, Tunneling): final target memory must {e extend} the
      source's ([≤m]);
    - [inj]-based passes (SimplLocals, Cminorgen, Inlining): block
      structures differ; results must inject under the canonically grown
      identity mapping.

    This is a strictly stronger check than the end-to-end differential:
    it pins each pass to its declared convention. *)

open Memory
open Memory.Values
open Iface.Li

let check = Alcotest.(check bool)
let fuel = 2_000_000

let programs =
  [
    ( "arith",
      "int f(int x) { int y = x * 3 + 1; return y - x / (x | 1); } int main(void) { return f(41); }" );
    ( "memory",
      "int a[6]; int main(void) { for (int i = 0; i < 6; i++) a[i] = i * i; int s = 0; for (int i = 0; i < 6; i++) s += a[i]; return s; }" );
    ( "calls",
      "int g(int x) { return x + 1; } int f(int x) { return g(g(x)) * g(x); } int main(void) { return f(5); }" );
    ( "stackargs",
      "int w(int a,int b,int c,int d,int e,int f,int g,int h) { return g * 10 + h; } int main(void) { return w(1,2,3,4,5,6,7,8); }" );
    ( "globals",
      "int acc = 0; void bump(int k) { acc += k; } int main(void) { for (int i = 1; i <= 5; i++) bump(i); return acc; }" );
  ]

(* Compare the outcomes of two C-interfaced semantics on the same query
   under a given reply relation. *)
let co ~mem_rel name l1 l2 q =
  let o1 = Core.Smallstep.run ~fuel l1 ~oracle:(fun _ -> None) q in
  let o2 = Core.Smallstep.run ~fuel l2 ~oracle:(fun _ -> None) q in
  match (o1, o2) with
  | Core.Smallstep.Final (t1, r1), Core.Smallstep.Final (t2, r2) ->
    check (name ^ ": traces") true (Core.Events.trace_equal t1 t2);
    check (name ^ ": result") true (lessdef r1.cr_res r2.cr_res);
    check (name ^ ": result defined") true (r1.cr_res <> Vundef);
    check (name ^ ": memory relation") true (mem_rel r1.cr_mem r2.cr_mem)
  | Core.Smallstep.Goes_wrong _, _ -> () (* source UB *)
  | _ ->
    Alcotest.failf "%s: unexpected outcomes (%a / %a)" name
      (Core.Smallstep.pp_outcome (fun _ _ -> ())) o1
      (Core.Smallstep.pp_outcome (fun _ _ -> ())) o2

let mem_equal m1 m2 = Mem.equal m1 m2
let mem_ext m1 m2 = Meminj.mem_extends m1 m2

let mem_inj m1 m2 =
  (* Identity mapping on the shared prefix, grown canonically: the
     blocks both sides allocated in lockstep relate; source-only blocks
     (locals removed later in the pipeline) are unmapped. *)
  let f = Core.Cklr.grow_meminj Meminj.empty m1 m2 in
  Meminj.mem_inject f m1 m2

let case (pname, src) =
  Alcotest.test_case pname `Quick (fun () ->
      let p = Cfrontend.Cparser.parse_program src in
      let symbols = Iface.Ast.prog_defs_names p in
      let arts = Support.Errors.get (Driver.Compiler.compile p) in
      let q = Option.get (Driver.Runners.main_query ~symbols ~defs:p ()) in
      let cl1 = Cfrontend.Clight.semantics ~symbols arts.clight1 in
      let cl2 = Cfrontend.Clight.semantics ~mode:`Temp_params ~symbols arts.clight2 in
      let csm = Cfrontend.Csharpminor.semantics ~symbols arts.csharpminor in
      let cm = Middle.Cminor.semantics ~symbols arts.cminor in
      let sel = Middle.Cminorsel.semantics ~symbols arts.cminorsel in
      let rtl0 = Middle.Rtl.semantics ~symbols arts.rtl_gen in
      let rtl = Middle.Rtl.semantics ~symbols arts.rtl in
      (* SimplLocals: injp ↠ inj *)
      co ~mem_rel:mem_inj "SimplLocals" cl1 cl2 q;
      (* Cshmgen: id ↠ id — memories equal *)
      co ~mem_rel:mem_equal "Cshmgen" cl2 csm q;
      (* Cminorgen: injp ↠ inj *)
      co ~mem_rel:mem_inj "Cminorgen" csm cm q;
      (* Selection: wt·ext ↠ wt·ext *)
      co ~mem_rel:mem_ext "Selection" cm sel q;
      (* RTLgen: ext ↠ ext *)
      co ~mem_rel:mem_ext "RTLgen" sel rtl0 q;
      (* The RTL optimization block: vertical composition of ext-and
         inj-based conventions (Inlining drops empty stack blocks). *)
      co ~mem_rel:mem_inj "RTL optimizations" rtl0 rtl q)

(* The wt invariant along the pipeline: every query/reply pair at the
   C-level boundaries is well-typed (Appendix B.2). *)
let wt_along_pipeline =
  Alcotest.test_case "wt invariant holds at boundaries" `Quick (fun () ->
      let src, _ = List.nth programs 2 in
      ignore src;
      let _, src = List.nth programs 2 in
      let p = Cfrontend.Cparser.parse_program src in
      let symbols = Iface.Ast.prog_defs_names p in
      let arts = Support.Errors.get (Driver.Compiler.compile p) in
      let q = Option.get (Driver.Runners.main_query ~symbols ~defs:p ()) in
      check "query wt" true
        (Iface.Callconv.wt_c.Core.Invariant.query_inv q.cq_sg q);
      let l = Middle.Rtl.semantics ~symbols arts.rtl in
      match Core.Smallstep.run ~fuel l ~oracle:(fun _ -> None) q with
      | Core.Smallstep.Final (_, r) ->
        check "reply wt" true
          (Iface.Callconv.wt_c.Core.Invariant.reply_inv q.cq_sg r)
      | _ -> Alcotest.fail "expected final")

let suite = ("per-pass", List.map case programs @ [ wt_along_pipeline ])
