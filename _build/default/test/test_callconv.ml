(** Tests for the concrete simulation conventions [CL], [LM], [MA], the
    [wt] invariant and the CKLR conventions (paper §5, Appendix B–C). *)

open Memory
open Memory.Mtypes
open Memory.Values
open Target
open Target.Machregs
open Target.Locations
open Core
open Iface.Li
open Iface.Callconv

let check = Alcotest.(check bool)

let sg_iii = { sig_args = [ Tint; Tint; Tint ]; sig_res = Some Tint }

let sg_many =
  { sig_args = List.init 8 (fun _ -> Tint); sig_res = Some Tint }

let mem_with_globals () =
  let m = Mem.empty in
  let m, b = Mem.alloc m 0 16 in
  (m, b)

let c_query_for sg args =
  let m, b = mem_with_globals () in
  { cq_vf = Vptr (b, 0); cq_sg = sg; cq_args = args; cq_mem = m }

let cl_tests =
  [
    Alcotest.test_case "CL marshals register arguments" `Quick (fun () ->
        let q = c_query_for sg_iii [ Vint 1l; Vint 2l; Vint 3l ] in
        match cc_cl.Simconv.fwd_query q with
        | Some (w, lq) ->
          check "args extracted" true
            (Conventions.extract_arguments sg_iii lq.lq_ls
            = [ Vint 1l; Vint 2l; Vint 3l ]);
          check "relation holds" true (cc_cl.Simconv.chk_query w q lq);
          check "regs DI SI DX" true
            (Locset.get (R DI) lq.lq_ls = Vint 1l
            && Locset.get (R SI) lq.lq_ls = Vint 2l
            && Locset.get (R DX) lq.lq_ls = Vint 3l)
        | None -> Alcotest.fail "fwd_query failed");
    Alcotest.test_case "CL marshals stack arguments" `Quick (fun () ->
        let args = List.init 8 (fun i -> Vint (Int32.of_int i)) in
        let q = c_query_for sg_many args in
        match cc_cl.Simconv.fwd_query q with
        | Some (_, lq) ->
          check "7th arg in Outgoing slot 0" true
            (Locset.get (S (Outgoing, 0, Tint)) lq.lq_ls = Vint 6l);
          check "8th arg in Outgoing slot 1" true
            (Locset.get (S (Outgoing, 1, Tint)) lq.lq_ls = Vint 7l)
        | None -> Alcotest.fail "fwd_query failed");
    Alcotest.test_case "CL reply: result read from AX" `Quick (fun () ->
        let q = c_query_for sg_iii [ Vint 1l; Vint 2l; Vint 3l ] in
        let w, _ = Option.get (cc_cl.Simconv.fwd_query q) in
        let ls' = Locset.set (R AX) (Vint 99l) Locset.init in
        let r2 = { lr_ls = ls'; lr_mem = q.cq_mem } in
        (match cc_cl.Simconv.bwd_reply w r2 with
        | Some r1 -> check "99" true (r1.cr_res = Vint 99l)
        | None -> Alcotest.fail "bwd_reply failed");
        check "reply relation" true
          (cc_cl.Simconv.chk_reply w { cr_res = Vint 99l; cr_mem = q.cq_mem } r2));
    Alcotest.test_case "CL fwd_reply preserves callee-save from the call"
      `Quick (fun () ->
        let q = c_query_for sg_iii [ Vint 1l; Vint 2l; Vint 3l ] in
        let w, lq = Option.get (cc_cl.Simconv.fwd_query q) in
        let _, ls0 = w in
        ignore lq;
        let r2 =
          Option.get (cc_cl.Simconv.fwd_reply w { cr_res = Vint 5l; cr_mem = q.cq_mem })
        in
        check "result placed" true (Locset.get (R AX) r2.lr_ls = Vint 5l);
        List.iter
          (fun r ->
            if is_callee_save r then
              check "callee-save" true
                (Locset.get (R r) r2.lr_ls = Locset.get (R r) ls0))
          all_mregs);
  ]

let lm_tests =
  [
    Alcotest.test_case "LM with register-only signature" `Quick (fun () ->
        let q = c_query_for sg_iii [ Vint 1l; Vint 2l; Vint 3l ] in
        let _, lq = Option.get (cc_cl.Simconv.fwd_query q) in
        match cc_lm.Simconv.fwd_query lq with
        | Some (w, mq) ->
          check "regs carried" true
            (Regfile.get DI mq.mq_rs = Vint 1l
            && Regfile.get DX mq.mq_rs = Vint 3l);
          check "no stack block needed" true
            (Mem.nextblock mq.mq_mem = Mem.nextblock lq.lq_mem);
          check "relation" true (cc_lm.Simconv.chk_query w lq mq)
        | None -> Alcotest.fail "fwd failed");
    Alcotest.test_case "LM materializes the argument region" `Quick
      (fun () ->
        let args = List.init 8 (fun i -> Vint (Int32.of_int (10 + i))) in
        let q = c_query_for sg_many args in
        let _, lq = Option.get (cc_cl.Simconv.fwd_query q) in
        match cc_lm.Simconv.fwd_query lq with
        | Some (_, mq) -> (
          match mq.mq_sp with
          | Vptr (b, 0) ->
            check "stack arg 0 in memory" true
              (Mem.load Memdata.Mint32 mq.mq_mem b 0 = Some (Vint 16l));
            check "stack arg 1 in memory" true
              (Mem.load Memdata.Mint32 mq.mq_mem b 8 = Some (Vint 17l))
          | _ -> Alcotest.fail "expected stack pointer")
        | None -> Alcotest.fail "fwd failed");
    Alcotest.test_case "free_args removes permissions (Fig. 13)" `Quick
      (fun () ->
        let args = List.init 8 (fun i -> Vint (Int32.of_int i)) in
        let q = c_query_for sg_many args in
        let _, lq = Option.get (cc_cl.Simconv.fwd_query q) in
        let _, mq = Option.get (cc_lm.Simconv.fwd_query lq) in
        match free_args sg_many mq.mq_mem mq.mq_sp with
        | Some mbar -> (
          match mq.mq_sp with
          | Vptr (b, 0) ->
            check "no longer readable" true
              (Mem.load Memdata.Mint32 mbar b 0 = None);
            check "source cannot write args region" true
              (Mem.store Memdata.Mint32 mbar b 0 (Vint 0l) = None)
          | _ -> Alcotest.fail "expected sp")
        | None -> Alcotest.fail "free_args failed");
    Alcotest.test_case "mix restores the argument region" `Quick (fun () ->
        let args = List.init 8 (fun i -> Vint (Int32.of_int i)) in
        let q = c_query_for sg_many args in
        let _, lq = Option.get (cc_cl.Simconv.fwd_query q) in
        let w, mq = Option.get (cc_lm.Simconv.fwd_query lq) in
        let mbar = Option.get (free_args sg_many mq.mq_mem mq.mq_sp) in
        match mix w.lm_sg w.lm_sp w.lm_mem mbar with
        | Some m' -> (
          match mq.mq_sp with
          | Vptr (b, 0) ->
            check "restored" true
              (Mem.load Memdata.Mint32 m' b 0 = Some (Vint 6l))
          | _ -> Alcotest.fail "expected sp")
        | None -> Alcotest.fail "mix failed");
    Alcotest.test_case "LM reply checks callee-save preservation" `Quick
      (fun () ->
        let q = c_query_for sg_iii [ Vint 1l; Vint 2l; Vint 3l ] in
        let _, lq = Option.get (cc_cl.Simconv.fwd_query q) in
        let w, _ = Option.get (cc_lm.Simconv.fwd_query lq) in
        let ls' = Locset.set (R AX) (Vint 7l) Locset.init in
        let good =
          { mr_rs =
              List.fold_left
                (fun rs r ->
                  if is_callee_save r then
                    Regfile.set r (Regfile.get r w.lm_rs) rs
                  else rs)
                (Regfile.set AX (Vint 7l) Regfile.init)
                all_mregs;
            mr_mem = lq.lq_mem }
        in
        let bad = { good with mr_rs = Regfile.set BX (Vint 0l) good.mr_rs } in
        check "good accepted" true
          (cc_lm.Simconv.chk_reply w { lr_ls = ls'; lr_mem = lq.lq_mem } good);
        check "clobbered callee-save rejected" false
          (cc_lm.Simconv.chk_reply w { lr_ls = ls'; lr_mem = lq.lq_mem } bad));
  ]

let ma_tests =
  [
    Alcotest.test_case "MA installs PC/SP/RA" `Quick (fun () ->
        let q = c_query_for sg_iii [ Vint 1l; Vint 2l; Vint 3l ] in
        let _, lq = Option.get (cc_cl.Simconv.fwd_query q) in
        let _, mq = Option.get (cc_lm.Simconv.fwd_query lq) in
        match cc_ma.Simconv.fwd_query mq with
        | Some (w, aq) ->
          check "pc=vf" true (Pregfile.get PC aq.aq_rs = mq.mq_vf);
          check "sp" true (Pregfile.get SP aq.aq_rs = mq.mq_sp);
          check "ra" true (Pregfile.get RA aq.aq_rs = mq.mq_ra);
          check "mregs carried" true
            (Pregfile.get (Mreg DI) aq.aq_rs = Regfile.get DI mq.mq_rs);
          check "relation" true (cc_ma.Simconv.chk_query w mq aq)
        | None -> Alcotest.fail "fwd failed");
    Alcotest.test_case "MA reply: PC must return to RA, SP restored" `Quick
      (fun () ->
        let q = c_query_for sg_iii [ Vint 1l; Vint 2l; Vint 3l ] in
        let _, lq = Option.get (cc_cl.Simconv.fwd_query q) in
        let _, mq = Option.get (cc_lm.Simconv.fwd_query lq) in
        let w, _ = Option.get (cc_ma.Simconv.fwd_query mq) in
        let rs_good =
          Pregfile.init |> Pregfile.set PC w.ma_ra |> Pregfile.set SP w.ma_sp
          |> Pregfile.set (Mreg AX) (Vint 3l)
        in
        let mr = { mr_rs = Regfile.set AX (Vint 3l) Regfile.init; mr_mem = mq.mq_mem } in
        check "good" true
          (cc_ma.Simconv.chk_reply w mr { ar_rs = rs_good; ar_mem = mq.mq_mem });
        let rs_bad = Pregfile.set PC (Vlong 77L) rs_good in
        check "wrong pc rejected" false
          (cc_ma.Simconv.chk_reply w mr { ar_rs = rs_bad; ar_mem = mq.mq_mem }));
  ]

let wt_tests =
  [
    Alcotest.test_case "wt accepts well-typed queries" `Quick (fun () ->
        let q = c_query_for sg_iii [ Vint 1l; Vint 2l; Vint 3l ] in
        check "ok" true (wt_c.Invariant.query_inv sg_iii q));
    Alcotest.test_case "wt rejects ill-typed arguments" `Quick (fun () ->
        let q = c_query_for sg_iii [ Vint 1l; Vlong 2L; Vint 3l ] in
        check "bad" false (wt_c.Invariant.query_inv sg_iii q));
    Alcotest.test_case "wt reply typing" `Quick (fun () ->
        let m, _ = mem_with_globals () in
        check "int ok" true
          (wt_c.Invariant.reply_inv sg_iii { cr_res = Vint 0l; cr_mem = m });
        check "long bad" false
          (wt_c.Invariant.reply_inv sg_iii { cr_res = Vlong 0L; cr_mem = m }));
    Alcotest.test_case "wt promotion to a convention" `Quick (fun () ->
        let q = c_query_for sg_iii [ Vint 1l; Vint 2l; Vint 3l ] in
        match cc_wt.Simconv.fwd_query q with
        | Some (w, q') ->
          check "diagonal" true (q = q');
          check "chk" true (cc_wt.Simconv.chk_query w q q')
        | None -> Alcotest.fail "fwd failed");
  ]

let cklr_tests =
  [
    Alcotest.test_case "cc_cklr(ext) roundtrip" `Quick (fun () ->
        let cc = cc_cklr (module Cklr.Ext) in
        let q = c_query_for sg_iii [ Vint 1l; Vint 2l; Vint 3l ] in
        match cc.Simconv.fwd_query q with
        | Some (w, q2) ->
          check "chk_query" true (cc.Simconv.chk_query w q q2);
          let r = { cr_res = Vint 9l; cr_mem = q.cq_mem } in
          check "chk_reply" true (cc.Simconv.chk_reply w r r)
        | None -> Alcotest.fail "fwd failed");
    Alcotest.test_case "cc_cklr(inj) accepts lockstep growth" `Quick
      (fun () ->
        let cc = cc_cklr (module Cklr.Inj) in
        let q = c_query_for sg_iii [ Vint 1l; Vint 2l; Vint 3l ] in
        let w, q2 = Option.get (cc.Simconv.fwd_query q) in
        (* The call allocates a block on both sides. *)
        let m1', _ = Mem.alloc q.cq_mem 0 8 in
        let m2', _ = Mem.alloc q2.cq_mem 0 8 in
        check "reply ok" true
          (cc.Simconv.chk_reply w
             { cr_res = Vint 1l; cr_mem = m1' }
             { cr_res = Vint 1l; cr_mem = m2' }));
    Alcotest.test_case "cc_cklr(injp) rejects clobbering protected region"
      `Quick (fun () ->
        let cc = cc_cklr (module Cklr.Injp) in
        let q = c_query_for sg_iii [ Vint 1l; Vint 2l; Vint 3l ] in
        let w, q2 = Option.get (cc.Simconv.fwd_query q) in
        (* Target-side-only block write: out of reach, must be rejected
           when checking reply accessibility (Fig. 9). *)
        let m2', nb = Mem.alloc q2.cq_mem 0 8 in
        let m2'' = Option.get (Mem.store Memdata.Mint32 m2' nb 0 (Vint 1l)) in
        let m1', _ = Mem.alloc q.cq_mem 0 8 in
        ignore m2'';
        (* Lockstep growth with equal contents is fine... *)
        check "lockstep ok" true
          (cc.Simconv.chk_reply w
             { cr_res = Vint 0l; cr_mem = m1' }
             { cr_res = Vint 0l; cr_mem = m2' });
        (* ...but modifying a pre-existing source-unmapped region is not.
           Build a world whose source block is unmapped, then touch it. *)
        let m0 = Mem.empty in
        let m0, a = Mem.alloc m0 0 8 in
        let f = Meminj.empty in
        let w0 = Meminj.injp_world f m0 m0 in
        let m0' = Option.get (Mem.store Memdata.Mint32 m0 a 0 (Vint 5l)) in
        check "unmapped write rejected" false
          (Meminj.injp_acc w0 (Meminj.injp_world f m0' m0)));
  ]

let suite = ("callconv", cl_tests @ lm_tests @ ma_tests @ wt_tests @ cklr_tests)
