(** Unit tests for individual compiler passes: structural properties of
    the transformed code, beyond the end-to-end differential checks. *)

open Support
module R = Middle.Rtl
module L = Backend.Ltl
module Lin = Backend.Linear
module M = Backend.Mach
module A = Backend.Asm
module Op = Middle.Op

let check = Alcotest.(check bool)

let compile src = Errors.get (Driver.Compiler.compile (Cfrontend.Cparser.parse_program src))

let internal_functions (p : ('f, 'v) Iface.Ast.program) : (Ident.t * 'f) list =
  List.filter_map
    (fun (id, d) ->
      match d with
      | Iface.Ast.Gfun (Iface.Ast.Internal f) -> Some (id, f)
      | _ -> None)
    p.Iface.Ast.prog_defs

let find_fn p name = List.assoc (Ident.intern name) (internal_functions p)

(* --- SimplLocals ----------------------------------------------------- *)

let simpllocals_tests =
  [
    Alcotest.test_case "scalars are lifted out of memory" `Quick (fun () ->
        let arts = compile "int f(int x) { int y = x + 1; return y; }" in
        let f = find_fn arts.clight2 "f" in
        check "no memory vars left" true (f.Cfrontend.Csyntax.fn_vars = []));
    Alcotest.test_case "addressed variables stay in memory" `Quick (fun () ->
        let arts = compile "int f(void) { int y = 0; int *p = &y; *p = 3; return y; }" in
        let f = find_fn arts.clight2 "f" in
        check "y still a memory var" true
          (List.exists
             (fun (id, _) -> Ident.name id = "y")
             f.Cfrontend.Csyntax.fn_vars));
    Alcotest.test_case "arrays stay in memory" `Quick (fun () ->
        let arts = compile "int f(void) { int a[2]; a[0] = 1; a[1] = 2; return a[0]; }" in
        let f = find_fn arts.clight2 "f" in
        check "array kept" true (List.length f.Cfrontend.Csyntax.fn_vars = 1));
    Alcotest.test_case "addressed parameter gets a copy-in" `Quick (fun () ->
        let arts = compile "int f(int x) { int *p = &x; return *p; }" in
        let f = find_fn arts.clight2 "f" in
        check "x is a memory var" true
          (List.exists (fun (id, _) -> Ident.name id = "x") f.Cfrontend.Csyntax.fn_vars);
        check "parameter renamed" true
          (List.for_all (fun (id, _) -> Ident.name id <> "x") f.Cfrontend.Csyntax.fn_params));
  ]

(* --- Cminorgen ------------------------------------------------------- *)

let cminorgen_tests =
  [
    Alcotest.test_case "locals collapse into one stack block" `Quick (fun () ->
        let arts =
          compile "int f(void) { int a[2]; int b[3]; a[0]=1; b[0]=2; return a[0]+b[0]; }"
        in
        let f = find_fn arts.cminor "f" in
        (* 8 (a, padded) + 16 (b padded to 8-mult: 12->16) *)
        check "stackspace covers both" true (f.Middle.Cminor.fn_stackspace >= 20));
    Alcotest.test_case "no locals => no stack space" `Quick (fun () ->
        let arts = compile "int f(int x) { return x + 1; }" in
        let f = find_fn arts.cminor "f" in
        Alcotest.(check int) "zero" 0 f.Middle.Cminor.fn_stackspace);
  ]

(* --- Selection ------------------------------------------------------- *)

let rec sel_expr_ops (e : Middle.Cminorsel.expr) : Op.operation list =
  match e with
  | Middle.Cminorsel.Evar _ -> []
  | Middle.Cminorsel.Eop (op, args) -> op :: List.concat_map sel_expr_ops args
  | Middle.Cminorsel.Eload (_, _, args) -> List.concat_map sel_expr_ops args

let rec sel_stmt_ops (s : Middle.Cminorsel.stmt) : Op.operation list =
  match s with
  | Middle.Cminorsel.Sassign (_, e) -> sel_expr_ops e
  | Middle.Cminorsel.Sstore (_, _, args, e) ->
    List.concat_map sel_expr_ops args @ sel_expr_ops e
  | Middle.Cminorsel.Sseq (a, b) -> sel_stmt_ops a @ sel_stmt_ops b
  | Middle.Cminorsel.Sifthenelse (Middle.Cminorsel.CEcond (_, args), a, b) ->
    List.concat_map sel_expr_ops args @ sel_stmt_ops a @ sel_stmt_ops b
  | Middle.Cminorsel.Sloop a | Middle.Cminorsel.Sblock a -> sel_stmt_ops a
  | Middle.Cminorsel.Sreturn (Some e) -> sel_expr_ops e
  | Middle.Cminorsel.Scall (_, _, e, args) ->
    sel_expr_ops e @ List.concat_map sel_expr_ops args
  | _ -> []

let selection_tests =
  [
    Alcotest.test_case "constants become immediates" `Quick (fun () ->
        let arts = compile "int f(int x) { return x + 5; }" in
        let f = find_fn arts.cminorsel "f" in
        let ops = sel_stmt_ops f.Middle.Cminorsel.fn_body in
        check "Oaddimm selected" true
          (List.exists (function Op.Oaddimm 5l -> true | _ -> false) ops));
    Alcotest.test_case "global loads use Aglobal addressing" `Quick (fun () ->
        let arts = compile "int g; int f(void) { return g; }" in
        let f = find_fn arts.cminorsel "f" in
        let rec has_aglobal (s : Middle.Cminorsel.stmt) =
          match s with
          | Middle.Cminorsel.Sreturn (Some (Middle.Cminorsel.Eload (_, Op.Aglobal _, _))) -> true
          | Middle.Cminorsel.Sseq (a, b) -> has_aglobal a || has_aglobal b
          | _ -> false
        in
        check "Aglobal" true (has_aglobal f.Middle.Cminorsel.fn_body));
    Alcotest.test_case "comparisons fold into conditions" `Quick (fun () ->
        let arts = compile "int f(int x) { if (x < 3) return 1; return 0; }" in
        let f = find_fn arts.cminorsel "f" in
        let rec cond_of (s : Middle.Cminorsel.stmt) =
          match s with
          | Middle.Cminorsel.Sifthenelse (Middle.Cminorsel.CEcond (c, _), _, _) -> Some c
          | Middle.Cminorsel.Sseq (a, b) -> (
            match cond_of a with Some c -> Some c | None -> cond_of b)
          | Middle.Cminorsel.Sblock a | Middle.Cminorsel.Sloop a -> cond_of a
          | _ -> None
        in
        check "Ccompimm(<,3)" true
          (cond_of f.Middle.Cminorsel.fn_body
          = Some (Op.Ccompimm (Memory.Mtypes.Clt, 3l))));
  ]

(* --- RTL optimizations ----------------------------------------------- *)

let count_instrs pred (f : R.coq_function) =
  R.Regmap.fold (fun _ i acc -> if pred i then acc + 1 else acc) f.R.fn_code 0

let rtl_opt_tests =
  [
    Alcotest.test_case "constprop folds constants" `Quick (fun () ->
        let arts = compile "int f(void) { int x = 3; int y = 4; return x * y; }" in
        let f = find_fn arts.rtl "f" in
        check "result computed statically" true
          (count_instrs
             (function R.Iop (Op.Ointconst 12l, _, _, _) -> true | _ -> false)
             f
          > 0));
    Alcotest.test_case "constprop folds known branches" `Quick (fun () ->
        let arts = compile "int f(void) { if (1 < 2) return 7; return 8; }" in
        let f = find_fn arts.rtl "f" in
        Alcotest.(check int) "no conditions left" 0
          (count_instrs (function R.Icond _ -> true | _ -> false) f));
    Alcotest.test_case "tailcall recognized" `Quick (fun () ->
        let arts =
          compile
            "int g(int x);\nint f(int x) { return g(x + 1); }\nint g(int x) { return x; }"
        in
        let f = find_fn arts.rtl "f" in
        check "Itailcall present" true
          (count_instrs (function R.Itailcall _ -> true | _ -> false) f > 0));
    Alcotest.test_case "no tailcall when stack data is live" `Quick (fun () ->
        let arts =
          compile
            "int g(int *p);\nint f(void) { int a[2]; a[0] = 1; return g(a); }\nint g(int *p) { return p[0]; }"
        in
        let f = find_fn arts.rtl "f" in
        Alcotest.(check int) "no Itailcall" 0
          (count_instrs (function R.Itailcall _ -> true | _ -> false) f));
    Alcotest.test_case "inlining splices leaf callees" `Quick (fun () ->
        let arts =
          compile "int sq(int x) { return x * x; } int f(int y) { return sq(y) + 1; }"
        in
        let f = find_fn arts.rtl "f" in
        Alcotest.(check int) "no calls left" 0
          (count_instrs
             (function R.Icall _ | R.Itailcall _ -> true | _ -> false)
             f));
    Alcotest.test_case "deadcode removes unused ops" `Quick (fun () ->
        let src = "int f(int x) { int dead = x * 1234; return x; }" in
        let with_dc = compile src in
        let without_dc =
          Errors.get
            (Driver.Compiler.compile
               ~options:
                 { Driver.Compiler.all_optims with Driver.Compiler.opt_deadcode = false }
               (Cfrontend.Cparser.parse_program src))
        in
        let ops p = count_instrs (function R.Iop (Op.Omulimm _, _, _, _) -> true | _ -> false) (find_fn p.Driver.Compiler.rtl "f") in
        check "multiplication eliminated" true (ops with_dc < ops without_dc || ops with_dc = 0));
    Alcotest.test_case "CSE reuses repeated expressions" `Quick (fun () ->
        let arts =
          compile
            "int f(int a, int b) { int x = a * b + a * b; return x; }"
        in
        let f = find_fn arts.rtl "f" in
        check "at most one multiply" true
          (count_instrs (function R.Iop (Op.Omul, _, _, _) -> true | _ -> false) f
          <= 1);
        check "a move was introduced or op folded" true
          (count_instrs (function R.Iop (Op.Omove, _, _, _) -> true | _ -> false) f
          >= 0));
    Alcotest.test_case "renumber produces dense reachable ids" `Quick
      (fun () ->
        let arts = compile "int f(int x) { while (x > 0) x = x - 1; return x; }" in
        let f = find_fn arts.rtl "f" in
        let n = R.Regmap.cardinal f.R.fn_code in
        let max_id = R.max_node f in
        check "ids within 1..n" true (max_id <= n + 1));
  ]

(* --- Backend passes -------------------------------------------------- *)

let backend_tests =
  [
    Alcotest.test_case "tunneling shortcuts Lnop chains" `Quick (fun () ->
        let arts = compile "int f(int x) { while (x > 0) { x = x - 1; } return x; }" in
        let f = find_fn arts.ltl_tunneled "f" in
        (* After tunneling, no branch targets an Lnop that merely forwards. *)
        let target_is_forwarding n =
          match L.Nodemap.find_opt n f.L.fn_code with
          | Some (L.Lnop _) -> true
          | _ -> false
        in
        let ok = ref true in
        L.Nodemap.iter
          (fun _ i ->
            match i with
            | L.Lcond (_, _, n1, n2) ->
              if target_is_forwarding n1 || target_is_forwarding n2 then ok := false
            | L.Lcall (_, _, n) -> if target_is_forwarding n then ok := false
            | _ -> ())
          f.L.fn_code;
        check "no forwarded branch targets" true !ok);
    Alcotest.test_case "cleanup removes unreferenced labels" `Quick (fun () ->
        let arts = compile "int f(int x) { if (x) return 1; return 2; }" in
        let f = find_fn arts.linear_clean "f" in
        let referenced =
          List.concat_map
            (function Lin.Lgoto l | Lin.Lcond (_, _, l) -> [ l ] | _ -> [])
            f.Lin.fn_code
        in
        List.iter
          (function
            | Lin.Llabel l ->
              check "label referenced" true (List.mem l referenced)
            | _ -> ())
          f.Lin.fn_code);
    Alcotest.test_case "stacking lays out disjoint regions" `Quick (fun () ->
        let arts =
          compile
            "int g(int a,int b,int c,int d,int e,int f0,int h,int i);\n\
             int f(int x) { int a[4]; a[0]=x; return g(a[0],1,2,3,4,5,6,7); }\n\
             int g(int a,int b,int c,int d,int e,int f0,int h,int i) { return a+h+i; }"
        in
        let f = find_fn arts.mach "f" in
        let fl = f.M.fn_layout in
        check "outgoing below link" true (8 * fl.M.fl_outgoing <= fl.M.fl_ofs_link);
        check "link below ra" true (fl.M.fl_ofs_link < fl.M.fl_ofs_ra);
        check "ra below locals" true (fl.M.fl_ofs_ra < fl.M.fl_locals);
        check "locals below stackdata" true (fl.M.fl_locals <= fl.M.fl_stackdata);
        check "stackdata within frame" true
          (fl.M.fl_stackdata + 16 <= fl.M.fl_size);
        check "saved regs in range" true
          (List.for_all
             (fun (_, ofs) -> ofs >= fl.M.fl_ofs_ra + 8 && ofs < fl.M.fl_locals)
             fl.M.fl_saved));
    Alcotest.test_case "asmgen starts with Pallocframe, ends with Pret" `Quick
      (fun () ->
        let arts = compile "int f(int x) { return x; }" in
        let f = find_fn arts.asm "f" in
        check "prologue" true
          (match f.A.fn_code.(0) with A.Pallocframe _ -> true | _ -> false);
        check "has a ret" true
          (Array.exists (function A.Pret -> true | _ -> false) f.A.fn_code));
    Alcotest.test_case "callee-saves are saved iff used" `Quick (fun () ->
        let leaf = compile "int f(int x) { return x + 1; }" in
        let fl = (find_fn leaf.mach "f").M.fn_layout in
        Alcotest.(check int) "leaf saves nothing" 0 (List.length fl.M.fl_saved);
        let caller =
          compile
            "int id(int x);\nint step(int x) { return id(x); }\nint id(int x) { return x; }\nint f(int x) { int a = step(x); int b = step(a); return a + b; }"
        in
        let fl2 = (find_fn caller.mach "f").M.fn_layout in
        check "caller saves something" true (List.length fl2.M.fl_saved > 0));
  ]

(* --- Parallel moves -------------------------------------------------- *)

let parmove_tests =
  let open Target.Machregs in
  let open Target.Locations in
  let eval_moves moves init =
    (* Execute a move list sequentially over a locset. *)
    List.fold_left
      (fun ls (src, dst) -> Locset.set dst (Locset.get src ls) ls)
      init moves
  in
  let regs = [ AX; BX; CX; DX; DI; R8 ] in
  let gen_perm =
    QCheck.map
      (fun shuffle ->
        (* a permutation of regs derived from the random list *)
        let idx = List.mapi (fun i x -> (x, i)) shuffle in
        let sorted = List.sort compare idx in
        List.map (fun (_, i) -> List.nth regs (i mod List.length regs)) sorted)
      (QCheck.list_of_size (QCheck.Gen.return (List.length regs)) QCheck.int)
  in
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"parallel moves implement permutations" ~count:200
         gen_perm
         (fun dsts ->
           (* moves: regs.(i) -> dsts.(i); duplicate destinations make the
              moves ill-formed, so require a permutation. *)
           QCheck.assume
             (List.sort compare dsts = List.sort compare_mreg regs);
           let moves =
             List.map2
               (fun s d -> (R s, R d, Memory.Mtypes.Tint))
               regs dsts
           in
           let compiled = Passes.Allocation.compile_parallel_move ~temp_slot:0 moves in
           (* initial locset: distinct values in each source *)
           let init =
             List.fold_left
               (fun ls (r, v) -> Locset.set (R r) (Memory.Values.Vint v) ls)
               Locset.init
               (List.mapi (fun i r -> (r, Int32.of_int (100 + i))) regs)
           in
           let final = eval_moves compiled init in
           (* each destination must hold its source's original value *)
           List.for_all2
             (fun s d ->
               Locset.get (R d) final = Locset.get (R s) init)
             regs dsts));
  ]

let suite0 =
  ( "passes",
    simpllocals_tests @ cminorgen_tests @ selection_tests @ rtl_opt_tests
    @ backend_tests @ parmove_tests )

(* --- Allocation validation (translation validation) ------------------- *)

let alloc_check_tests =
  let compile_rtl_ltl src =
    let arts = compile src in
    (arts.Driver.Compiler.rtl, arts.Driver.Compiler.ltl)
  in
  let mutate_ltl_fn name f (p : Backend.Ltl.program) =
    { p with
      Iface.Ast.prog_defs =
        List.map
          (fun (id, d) ->
            match d with
            | Iface.Ast.Gfun (Iface.Ast.Internal fn) when Ident.name id = name ->
              (id, Iface.Ast.Gfun (Iface.Ast.Internal (f fn)))
            | _ -> (id, d))
          p.Iface.Ast.prog_defs }
  in
  [
    Alcotest.test_case "validator accepts the allocator's output" `Quick
      (fun () ->
        let rtl, ltl =
          compile_rtl_ltl
            "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); } int main(void) { return fib(10); }"
        in
        match Passes.Alloc_check.validate_program rtl ltl with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "validator rejects a corrupted operand" `Quick
      (fun () ->
        let rtl, ltl = compile_rtl_ltl "int f(int x, int y) { return x + y; } int main(void) { return f(1,2); }" in
        (* Swap an operation's destination register. *)
        let corrupt fn =
          { fn with
            Backend.Ltl.fn_code =
              Backend.Ltl.Nodemap.map
                (function
                  | Backend.Ltl.Lop (Middle.Op.Oadd, args, _, n) ->
                    Backend.Ltl.Lop (Middle.Op.Oadd, args, Target.Machregs.R15, n)
                  | i -> i)
                fn.Backend.Ltl.fn_code }
        in
        match
          Passes.Alloc_check.validate_program rtl (mutate_ltl_fn "f" corrupt ltl)
        with
        | Ok () -> Alcotest.fail "corruption not detected"
        | Error _ -> ());
    Alcotest.test_case "validator rejects a dropped move" `Quick (fun () ->
        let rtl, ltl =
          compile_rtl_ltl "int f(int x) { int y = x; return y + x; } int main(void) { return f(7); }"
        in
        (* Turn the first move into a nop. *)
        let corrupt fn =
          let changed = ref false in
          { fn with
            Backend.Ltl.fn_code =
              Backend.Ltl.Nodemap.map
                (function
                  | Backend.Ltl.Lop (Middle.Op.Omove, _, _, n) when not !changed ->
                    changed := true;
                    Backend.Ltl.Lnop n
                  | i -> i)
                fn.Backend.Ltl.fn_code }
        in
        match
          Passes.Alloc_check.validate_program rtl (mutate_ltl_fn "f" corrupt ltl)
        with
        | Ok () -> Alcotest.fail "dropped move not detected"
        | Error _ -> ());
    Alcotest.test_case "validator rejects misplaced call arguments" `Quick
      (fun () ->
        let rtl, ltl =
          compile_rtl_ltl
            "int g(int a, int b) { return a - b; } int f(void) { return g(3, 4); } int main(void) { return f(); }"
        in
        (* Swap DI and SI destinations in the argument moves of f. *)
        let corrupt fn =
          { fn with
            Backend.Ltl.fn_code =
              Backend.Ltl.Nodemap.map
                (function
                  | Backend.Ltl.Lop (Middle.Op.Omove, args, Target.Machregs.DI, n) ->
                    Backend.Ltl.Lop (Middle.Op.Omove, args, Target.Machregs.SI, n)
                  | Backend.Ltl.Lop (Middle.Op.Omove, args, Target.Machregs.SI, n) ->
                    Backend.Ltl.Lop (Middle.Op.Omove, args, Target.Machregs.DI, n)
                  | i -> i)
                fn.Backend.Ltl.fn_code }
        in
        match
          Passes.Alloc_check.validate_program rtl (mutate_ltl_fn "f" corrupt ltl)
        with
        | Ok () -> Alcotest.fail "swapped arguments not detected"
        | Error _ -> ());
  ]

let suite = (fst suite0, snd suite0 @ alloc_check_tests)
