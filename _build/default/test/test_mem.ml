(** Unit and property tests for the memory model ([Memory.Mem],
    [Memory.Memdata]) — the laws behind Fig. 4 of the paper. *)

open Memory
open Memory.Values
open Memory.Memdata

let check = Alcotest.(check bool)

(* A small arena: one memory with a few allocated blocks. *)
let arena () =
  let m = Mem.empty in
  let m, b1 = Mem.alloc m 0 32 in
  let m, b2 = Mem.alloc m 0 16 in
  let m, b3 = Mem.alloc m (-8) 8 in
  (m, b1, b2, b3)

let gen_chunk =
  QCheck.oneofl
    [ Mint8signed; Mint8unsigned; Mint16signed; Mint16unsigned; Mint32;
      Mint64; Mfloat32; Mfloat64 ]

let gen_int32 = QCheck.map Int32.of_int QCheck.int
let gen_int64 = QCheck.map Int64.of_int QCheck.int

let value_for_chunk chunk =
  match chunk with
  | Mint8signed | Mint8unsigned | Mint16signed | Mint16unsigned | Mint32 ->
    QCheck.map (fun n -> Vint n) gen_int32
  | Mint64 -> QCheck.map (fun n -> Vlong n) gen_int64
  | Mfloat32 -> QCheck.map (fun f -> Vsingle (to_single f)) QCheck.float
  | Mfloat64 -> QCheck.map (fun f -> Vfloat f) QCheck.float
  | Many32 | Many64 -> QCheck.always Vundef

(* The normalization a chunk applies on store-then-load. *)
let normalize chunk v =
  match chunk with
  | Mint8signed -> sign_ext 8 v
  | Mint8unsigned -> zero_ext 8 v
  | Mint16signed -> sign_ext 16 v
  | Mint16unsigned -> zero_ext 16 v
  | Mfloat32 -> ( match v with Vsingle f -> Vsingle (to_single f) | _ -> v)
  | _ -> v

let unit_tests =
  [
    Alcotest.test_case "alloc gives fresh blocks" `Quick (fun () ->
        let _, b1, b2, b3 = arena () in
        check "distinct" true (b1 <> b2 && b2 <> b3 && b1 <> b3));
    Alcotest.test_case "load uninitialized is undef" `Quick (fun () ->
        let m, b1, _, _ = arena () in
        check "undef" true (Mem.load Mint32 m b1 0 = Some Vundef));
    Alcotest.test_case "load out of bounds fails" `Quick (fun () ->
        let m, b1, _, _ = arena () in
        check "none" true (Mem.load Mint32 m b1 32 = None));
    Alcotest.test_case "load negative bound block" `Quick (fun () ->
        let m, _, _, b3 = arena () in
        check "some" true (Mem.load Mint64 m b3 (-8) <> None));
    Alcotest.test_case "store misaligned fails" `Quick (fun () ->
        let m, b1, _, _ = arena () in
        check "none" true (Mem.store Mint32 m b1 2 (Vint 1l) = None));
    Alcotest.test_case "free then load fails" `Quick (fun () ->
        let m, b1, _, _ = arena () in
        let m = Option.get (Mem.free m b1 0 32) in
        check "none" true (Mem.load Mint32 m b1 0 = None));
    Alcotest.test_case "double free fails" `Quick (fun () ->
        let m, b1, _, _ = arena () in
        let m = Option.get (Mem.free m b1 0 32) in
        check "none" true (Mem.free m b1 0 32 = None));
    Alcotest.test_case "freeing empty range is a no-op" `Quick (fun () ->
        let m, b1, _, _ = arena () in
        check "some" true (Mem.free m b1 8 8 = Some m));
    Alcotest.test_case "store pointer, load pointer" `Quick (fun () ->
        let m, b1, b2, _ = arena () in
        let m = Option.get (Mem.store Mint64 m b1 0 (Vptr (b2, 4))) in
        check "roundtrip" true (Mem.load Mint64 m b1 0 = Some (Vptr (b2, 4))));
    Alcotest.test_case "pointer bytes are opaque to int loads" `Quick
      (fun () ->
        let m, b1, b2, _ = arena () in
        let m = Option.get (Mem.store Mint64 m b1 0 (Vptr (b2, 4))) in
        check "int32 load of ptr is undef" true
          (Mem.load Mint32 m b1 0 = Some Vundef));
    Alcotest.test_case "overlapping store invalidates" `Quick (fun () ->
        let m, b1, _, _ = arena () in
        let m = Option.get (Mem.store Mint32 m b1 0 (Vint 0x11223344l)) in
        let m = Option.get (Mem.store Mint8unsigned m b1 1 (Vint 0xFFl)) in
        check "changed" true
          (Mem.load Mint32 m b1 0 = Some (Vint 0x1122FF44l)));
    Alcotest.test_case "little-endian byte order" `Quick (fun () ->
        let m, b1, _, _ = arena () in
        let m = Option.get (Mem.store Mint32 m b1 0 (Vint 0x11223344l)) in
        check "lsb first" true
          (Mem.load Mint8unsigned m b1 0 = Some (Vint 0x44l)));
    Alcotest.test_case "drop_perm read-only blocks stores" `Quick (fun () ->
        let m, b1, _, _ = arena () in
        let m = Option.get (Mem.drop_perm m b1 0 32 Mem.Readable) in
        check "store fails" true (Mem.store Mint32 m b1 0 (Vint 1l) = None);
        check "load ok" true (Mem.load Mint32 m b1 0 <> None));
    Alcotest.test_case "valid_pointer" `Quick (fun () ->
        let m, b1, _, _ = arena () in
        check "in" true (Mem.valid_pointer m b1 0);
        check "out" false (Mem.valid_pointer m b1 32);
        check "weak one-past" true (Mem.weak_valid_pointer m b1 32));
    Alcotest.test_case "unchanged_on reflexive" `Quick (fun () ->
        let m, _, _, _ = arena () in
        check "refl" true (Mem.unchanged_on (fun _ _ -> true) m m));
    Alcotest.test_case "unchanged_on detects store" `Quick (fun () ->
        let m, b1, _, _ = arena () in
        let m' = Option.get (Mem.store Mint32 m b1 0 (Vint 5l)) in
        check "detected" false (Mem.unchanged_on (fun _ _ -> true) m m');
        check "outside footprint" true
          (Mem.unchanged_on (fun b _ -> b <> b1) m m'));
  ]

let prop_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck.Test.make ~name:"load-after-store (good variable)" ~count:300
        (QCheck.pair gen_chunk (QCheck.int_bound 2)) (fun (chunk, slot) ->
          let m, b1, _, _ = arena () in
          let ofs = slot * 8 in
          QCheck.assume (ofs mod align_chunk chunk = 0);
          let vgen = value_for_chunk chunk in
          let v = QCheck.Gen.generate1 (QCheck.gen vgen) in
          match Mem.store chunk m b1 ofs v with
          | None -> false
          | Some m' -> Mem.load chunk m' b1 ofs = Some (normalize chunk v));
      QCheck.Test.make ~name:"store commutes on disjoint offsets" ~count:300
        (QCheck.pair gen_int32 gen_int32) (fun (v1, v2) ->
          let m, b1, _, _ = arena () in
          let s1 m = Mem.store Mint32 m b1 0 (Vint v1) in
          let s2 m = Mem.store Mint32 m b1 8 (Vint v2) in
          match (Option.bind (s1 m) s2, Option.bind (s2 m) s1) with
          | Some ma, Some mb -> Mem.equal ma mb
          | _ -> false);
      QCheck.Test.make ~name:"alloc preserves loads" ~count:200 gen_int32
        (fun v ->
          let m, b1, _, _ = arena () in
          let m = Option.get (Mem.store Mint32 m b1 0 (Vint v)) in
          let m', _ = Mem.alloc m 0 64 in
          Mem.load Mint32 m' b1 0 = Some (Vint v));
      QCheck.Test.make ~name:"loadbytes/storebytes roundtrip" ~count:200
        (QCheck.list_of_size (QCheck.Gen.return 8) (QCheck.int_bound 255))
        (fun bytes ->
          let m, b1, _, _ = arena () in
          let mvl = List.map (fun b -> Byte b) bytes in
          match Mem.storebytes m b1 4 mvl with
          | None -> false
          | Some m' -> Mem.loadbytes m' b1 4 8 = Some mvl);
      QCheck.Test.make ~name:"encode/decode int32" ~count:300 gen_int32
        (fun n -> decode_val Mint32 (encode_val Mint32 (Vint n)) = Vint n);
      QCheck.Test.make ~name:"encode/decode int64" ~count:300 gen_int64
        (fun n -> decode_val Mint64 (encode_val Mint64 (Vlong n)) = Vlong n);
      QCheck.Test.make ~name:"encode/decode float64 bits" ~count:300
        QCheck.float (fun f ->
          match decode_val Mfloat64 (encode_val Mfloat64 (Vfloat f)) with
          | Vfloat f' -> Int64.bits_of_float f = Int64.bits_of_float f'
          | _ -> false);
      QCheck.Test.make ~name:"encode size matches chunk" ~count:200 gen_chunk
        (fun chunk ->
          List.length (encode_val chunk Vundef) = size_chunk chunk);
      QCheck.Test.make ~name:"any64 roundtrips every value" ~count:200
        (QCheck.oneof
           [ QCheck.map (fun n -> Vint n) gen_int32;
             QCheck.map (fun n -> Vlong n) gen_int64;
             QCheck.always (Vptr (3, 16)) ])
        (fun v -> decode_val Many64 (encode_val Many64 v) = v);
    ]

let suite = ("mem", unit_tests @ prop_tests)
