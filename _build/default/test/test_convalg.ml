(** Tests for the simulation convention algebra and the Theorem 3.8
    derivation engine (paper §5, Figs. 10–11). *)

open Convalg
open Convalg.Cterm

let check = Alcotest.(check bool)

let typing_tests =
  [
    Alcotest.test_case "uniform C types C ⇔ A" `Quick (fun () ->
        check "typed" true (well_typed ~src:IC ~tgt:IA uniform_c));
    Alcotest.test_case "structural conventions transport interfaces" `Quick
      (fun () ->
        check "CL" true (well_typed ~src:IC ~tgt:IL [ CL ]);
        check "LM" true (well_typed ~src:IL ~tgt:IM [ LM ]);
        check "MA" true (well_typed ~src:IM ~tgt:IA [ MA ]);
        check "CL at L rejected" false (well_typed ~src:IL ~tgt:IL [ CL ]));
    Alcotest.test_case "CKLRs are endo at any interface" `Quick (fun () ->
        List.iter
          (fun i ->
            check "endo" true (well_typed ~src:i ~tgt:i [ Injp; Inj; Ext ]))
          [ IC; IL; IM; IA ]);
    Alcotest.test_case "identity term" `Quick (fun () ->
        check "id" true (well_typed ~src:IC ~tgt:IC []));
  ]

(* Every rewrite rule must preserve typing: for any start interface at
   which the lhs is typeable, the rhs must type identically. *)
let rule_typing =
  Alcotest.test_case "all rules preserve typing" `Quick (fun () ->
      List.iter
        (fun (r : Rules.rule) ->
          List.iter
            (fun i ->
              match infer i r.Rules.lhs with
              | Some o ->
                if infer i r.Rules.rhs <> Some o then
                  Alcotest.failf "rule %s changes typing" r.Rules.rule_name
              | None -> ())
            [ IC; IL; IM; IA ])
        Rules.all_rules)

let table3_tests =
  [
    Alcotest.test_case "Table 3 has 18 passes" `Quick (fun () ->
        Alcotest.(check int) "passes" 18 (List.length Derive.table3));
    Alcotest.test_case "Table 3 conventions are well-typed" `Quick (fun () ->
        (* The chain of incoming conventions must type from C to A. *)
        check "incoming" true
          (well_typed ~src:IC ~tgt:IA (Derive.composite `In));
        check "outgoing" true
          (well_typed ~src:IC ~tgt:IA (Derive.composite `Out)));
    Alcotest.test_case "optional passes marked" `Quick (fun () ->
        let opt =
          List.filter (fun p -> p.Derive.optional) Derive.table3
          |> List.map (fun p -> p.Derive.pass_name)
        in
        check "the five † passes of Table 3" true
          (List.sort compare opt
          = List.sort compare [ "Tailcall"; "Inlining"; "Constprop"; "CSE"; "Deadcode" ]));
  ]

let derivation_tests =
  [
    Alcotest.test_case "Thm 3.8: outgoing side reaches C" `Quick (fun () ->
        let out, _ = Derive.thm_3_8 () in
        check "ok" true out.Derive.ok);
    Alcotest.test_case "Thm 3.8: incoming side reaches C" `Quick (fun () ->
        let _, inc = Derive.thm_3_8 () in
        check "ok" true inc.Derive.ok);
    Alcotest.test_case "derivations use only direction-valid rules" `Quick
      (fun () ->
        (* Re-run normalization and confirm every applied rule name exists
           in the database with a compatible direction. *)
        let check_side dir =
          let d = Derive.derive_side dir in
          List.iter
            (fun (s : Derive.step) ->
              if
                (not (String.length s.Derive.step_desc > 3
                      && String.sub s.Derive.step_desc 0 3 = "pre"))
                && not (String.length s.Derive.step_desc > 4
                        && String.sub s.Derive.step_desc 0 4 = "post")
              then
                match
                  List.find_opt
                    (fun r -> r.Rules.rule_name = s.Derive.step_desc)
                    Rules.all_rules
                with
                | Some r ->
                  if not (Rules.usable dir r) then
                    Alcotest.failf "rule %s used in wrong direction"
                      r.Rules.rule_name
                | None ->
                  Alcotest.failf "unknown rule %s" s.Derive.step_desc)
            d.Derive.trace.Derive.steps
        in
        check_side `Incoming;
        check_side `Outgoing);
    Alcotest.test_case "every derivation step is well-typed" `Quick (fun () ->
        let check_side dir =
          let d = Derive.derive_side dir in
          List.iter
            (fun (s : Derive.step) ->
              check "typed" true (well_typed ~src:IC ~tgt:IA s.Derive.step_term))
            d.Derive.trace.Derive.steps
        in
        check_side `Incoming;
        check_side `Outgoing);
    Alcotest.test_case "derivation is insensitive to optional passes (§3.4)"
      `Quick (fun () ->
        (* Removing the optional (†) passes must still normalize to C:
           "C is not sensitive to the inclusion of optional optimization
           passes". *)
        let mandatory =
          List.filter (fun p -> not p.Derive.optional) Derive.table3
        in
        let t0 =
          (Rstar
          :: List.concat_map (fun p -> p.Derive.incoming) mandatory)
          @ [ Vainj ]
        in
        let final, _ = Derive.normalize `Incoming t0 in
        check "reaches C" true (equal final uniform_c));
  ]

let suite =
  ("convalg", typing_tests @ [ rule_typing ] @ table3_tests @ derivation_tests)
