(** Whole-program differential tests on realistic algorithms: every level
    of the pipeline must refine the Clight behavior (Thm. 3.8 instances
    on nontrivial code). *)

open Testlib.Testutil

let sorting =
  [
    diff_case "bubble sort"
      {|
int a[10] = {9, 3, 7, 1, 8, 2, 6, 0, 5, 4};
int main(void) {
  for (int i = 0; i < 10; i++)
    for (int j = 0; j + 1 < 10 - i; j++)
      if (a[j] > a[j+1]) { int t = a[j]; a[j] = a[j+1]; a[j+1] = t; }
  int code = 0;
  for (int i = 0; i < 10; i++) code = code * 10 + a[i];
  return code;
}
|}
      123456789l;
    diff_case "insertion sort with pointers"
      {|
void isort(int *a, int n) {
  for (int i = 1; i < n; i++) {
    int key = a[i];
    int j = i - 1;
    while (j >= 0 && a[j] > key) { a[j+1] = a[j]; j--; }
    a[j+1] = key;
  }
}
int main(void) {
  int a[8];
  for (int i = 0; i < 8; i++) a[i] = (7 * (i + 3)) % 8;
  isort(a, 8);
  int ok = 1;
  for (int i = 0; i + 1 < 8; i++) if (a[i] > a[i+1]) ok = 0;
  return ok * 100 + a[0] * 10 + a[7];
}
|}
      107l;
    diff_case "quickselect-style partition"
      {|
int a[9] = {5, 2, 8, 1, 9, 4, 7, 3, 6};
int partition(int lo, int hi) {
  int pivot = a[hi];
  int i = lo - 1;
  for (int j = lo; j < hi; j++)
    if (a[j] < pivot) { i++; int t = a[i]; a[i] = a[j]; a[j] = t; }
  int t = a[i+1]; a[i+1] = a[hi]; a[hi] = t;
  return i + 1;
}
int main(void) { return partition(0, 8); }
|}
      5l;
  ]

let number_theory =
  [
    diff_case "gcd and lcm"
      {|
int gcd(int a, int b) { while (b) { int t = a % b; a = b; b = t; } return a; }
int main(void) {
  int g = gcd(252, 105);
  int l = 252 / g * 105;
  return g * 10000 + l / 10;
}
|}
      210126l;
    diff_case "sieve of Eratosthenes"
      {|
char sieve[100];
int main(void) {
  int count = 0;
  for (int i = 2; i < 100; i++) sieve[i] = 1;
  for (int i = 2; i * i < 100; i++)
    if (sieve[i])
      for (int j = i * i; j < 100; j += i) sieve[j] = 0;
  for (int i = 2; i < 100; i++) if (sieve[i]) count++;
  return count;
}
|}
      25l;
    diff_case "collatz steps"
      {|
int collatz(int n) {
  int steps = 0;
  while (n != 1) {
    if (n % 2 == 0) n = n / 2; else n = 3 * n + 1;
    steps++;
  }
  return steps;
}
int main(void) { return collatz(27); }
|}
      111l;
    diff_case "modular exponentiation on longs"
      {|
long powmod(long b, long e, long m) {
  long r = 1L;
  b = b % m;
  while (e > 0L) {
    if (e % 2L == 1L) r = r * b % m;
    e = e / 2L;
    b = b * b % m;
  }
  return r;
}
int main(void) { return (int) powmod(7L, 123L, 1000003L); }
|}
      247362l;
    diff_case "fibonacci iterative vs recursive"
      {|
int fibr(int n) { if (n < 2) return n; return fibr(n-1) + fibr(n-2); }
int fibi(int n) {
  int a = 0, b = 1;
  for (int i = 0; i < n; i++) { int t = a + b; a = b; b = t; }
  return a;
}
int main(void) { return (fibr(15) == fibi(15)) ? fibi(15) : -1; }
|}
      610l;
  ]

let data_structures =
  [
    diff_case "binary search"
      {|
int a[16];
int bsearch0(int key, int n) {
  int lo = 0, hi = n - 1;
  while (lo <= hi) {
    int mid = lo + (hi - lo) / 2;
    if (a[mid] == key) return mid;
    if (a[mid] < key) lo = mid + 1; else hi = mid - 1;
  }
  return -1;
}
int main(void) {
  for (int i = 0; i < 16; i++) a[i] = i * 3;
  return bsearch0(21, 16) * 100 + (bsearch0(22, 16) + 1);
}
|}
      700l;
    diff_case "ring buffer"
      {|
int buf[8];
int head = 0, tail = 0, count = 0;
void push(int v) { if (count < 8) { buf[tail] = v; tail = (tail + 1) % 8; count++; } }
int pop(void) { if (count == 0) return -1; int v = buf[head]; head = (head + 1) % 8; count--; return v; }
int main(void) {
  for (int i = 1; i <= 10; i++) push(i * i);
  int s = 0;
  for (int i = 0; i < 5; i++) s += pop();
  push(100);
  while (count > 0) s += pop();
  return s;
}
|}
      304l;
    diff_case "two-dimensional dynamic programming"
      {|
int dp[8][8];
int main(void) {
  for (int i = 0; i < 8; i++) dp[i][0] = 1;
  for (int j = 0; j < 8; j++) dp[0][j] = 1;
  for (int i = 1; i < 8; i++)
    for (int j = 1; j < 8; j++)
      dp[i][j] = dp[i-1][j] + dp[i][j-1];
  return dp[7][7];
}
|}
      3432l;
    diff_case "linked structure via index arrays"
      {|
int next[10];
int value[10];
int main(void) {
  /* Build the list 0 -> 2 -> 4 -> 6 -> 8, each holding its square. */
  for (int i = 0; i < 10; i++) { value[i] = i * i; next[i] = -1; }
  for (int i = 0; i + 2 < 10; i += 2) next[i] = i + 2;
  int s = 0;
  for (int cur = 0; cur != -1; cur = next[cur]) s += value[cur];
  return s;
}
|}
      120l;
    diff_case "string length and reverse on char arrays"
      {|
char s[16];
int strlen0(char *p) { int n = 0; while (p[n]) n++; return n; }
void reverse(char *p, int n) {
  for (int i = 0, j = n - 1; i < j; i++, j--) { char t = p[i]; p[i] = p[j]; p[j] = t; }
}
int main(void) {
  s[0] = 'h'; s[1] = 'e'; s[2] = 'l'; s[3] = 'l'; s[4] = 'o'; s[5] = 0;
  int n = strlen0(s);
  reverse(s, n);
  return n * 1000 + s[0] + s[4];
}
|}
      5215l;
  ]

let floating_point =
  [
    diff_case "newton's method for sqrt"
      {|
double fabs0(double x) { return x < 0.0 ? -x : x; }
int main(void) {
  double x = 2.0;
  double guess = 1.0;
  for (int i = 0; i < 20; i++) guess = (guess + x / guess) / 2.0;
  double err = fabs0(guess * guess - 2.0);
  return err < 1e-9 ? (int)(guess * 1000000.0) : -1;
}
|}
      1414213l;
    diff_case "polynomial evaluation (Horner)"
      {|
double horner(double *c, int n, double x) {
  double acc = 0.0;
  for (int i = n - 1; i >= 0; i--) acc = acc * x + c[i];
  return acc;
}
double coeffs[4];
int main(void) {
  coeffs[0] = 1.0; coeffs[1] = -2.0; coeffs[2] = 0.5; coeffs[3] = 3.0;
  return (int) (horner(coeffs, 4, 2.0) * 10.0);
}
|}
      230l;
    diff_case "kahan-free summation determinism"
      {|
int main(void) {
  double s = 0.0;
  for (int i = 1; i <= 100; i++) s += 1.0 / (double) i;
  return (int)(s * 1000.0);
}
|}
      5187l;
  ]

(* Comma-separated multi-variable loops exercise the parser's statement
   lowering; these came up while writing the tests above. *)
let misc =
  [
    diff_case "nested function pointers"
      {|
int add(int a, int b) { return a + b; }
int mul(int a, int b) { return a * b; }
int apply(int (*f)(int, int), int x, int y) { return f(x, y); }
int main(void) {
  int (*op)(int, int);
  op = add;
  int s = apply(op, 3, 4);
  op = mul;
  return s * 100 + apply(op, 3, 4);
}
|}
      712l;
    diff_case "mutual recursion with accumulators"
      {|
int dec(int n, int acc);
int inc(int n, int acc) { if (n >= 100) return dec(n, acc + 1); return inc(n + 7, acc + 1); }
int dec(int n, int acc) { if (n <= 0) return acc; return dec(n - 13, acc + 1); }
int main(void) { return inc(0, 0); }
|}
      25l;
    diff_case "sign-extension torture"
      {|
char c[4];
short s[2];
int main(void) {
  c[0] = -1; c[1] = 127; c[2] = -128; c[3] = 42;
  s[0] = -1; s[1] = 32767;
  int sum = 0;
  for (int i = 0; i < 4; i++) sum += c[i];
  return sum * 1000 + (s[0] + s[1]) % 1000;
}
|}
      40766l;
  ]

(* A Brainfuck interpreter interpreting a small program: an interpreter
   compiled by the compiler, stressing nested loops, char arrays and
   pointer arithmetic. The BF program computes 7 * 6 into cell 2. *)
let interpreter =
  [
    diff_case "brainfuck interpreter (7*6)"
      {|
char tape[64];
char prog[32];
int run(int plen) {
  int pc = 0;
  int ptr = 0;
  int steps = 0;
  while (pc < plen && steps < 10000) {
    char c = prog[pc];
    steps++;
    if (c == '+') tape[ptr]++;
    else if (c == '-') tape[ptr]--;
    else if (c == '>') ptr++;
    else if (c == '<') ptr--;
    else if (c == '[') {
      if (tape[ptr] == 0) {
        int depth = 1;
        while (depth > 0) { pc++; if (prog[pc] == '[') depth++; if (prog[pc] == ']') depth--; }
      }
    }
    else if (c == ']') {
      if (tape[ptr] != 0) {
        int depth = 1;
        while (depth > 0) { pc--; if (prog[pc] == ']') depth++; if (prog[pc] == '[') depth--; }
      }
    }
    pc++;
  }
  return tape[2];
}
int main(void) {
  /* +++++++ [ > ++++++ < - ]  then move cell1 to cell2 */
  int i = 0;
  prog[i] = '+'; i++; prog[i] = '+'; i++; prog[i] = '+'; i++; prog[i] = '+'; i++;
  prog[i] = '+'; i++; prog[i] = '+'; i++; prog[i] = '+'; i++;
  prog[i] = '['; i++;
  prog[i] = '>'; i++;
  prog[i] = '+'; i++; prog[i] = '+'; i++; prog[i] = '+'; i++;
  prog[i] = '+'; i++; prog[i] = '+'; i++; prog[i] = '+'; i++;
  prog[i] = '<'; i++; prog[i] = '-'; i++;
  prog[i] = ']'; i++;
  /* move cell 1 to cell 2: > [ > + < - ] */
  prog[i] = '>'; i++;
  prog[i] = '['; i++; prog[i] = '>'; i++; prog[i] = '+'; i++;
  prog[i] = '<'; i++; prog[i] = '-'; i++; prog[i] = ']'; i++;
  return run(i);
}
|}
      42l;
  ]

let suite =
  ( "programs",
    sorting @ number_theory @ data_structures @ floating_point @ misc
    @ interpreter )
