(** Unit and property tests for the value library ([Memory.Values]). *)

open Memory.Mtypes
open Memory.Values

let check = Alcotest.(check bool)
let vi n = Vint (Int32.of_int n)
let vl n = Vlong (Int64.of_int n)

(* QCheck generators. *)
let gen_int32 = QCheck.map Int32.of_int QCheck.int
let gen_int64 = QCheck.map Int64.of_int QCheck.int

let gen_value =
  QCheck.oneof
    [
      QCheck.always Vundef;
      QCheck.map (fun n -> Vint n) gen_int32;
      QCheck.map (fun n -> Vlong n) gen_int64;
      QCheck.map (fun f -> Vfloat f) QCheck.float;
      QCheck.map (fun (b, o) -> Vptr ((b land 7) + 1, o land 255))
        (QCheck.pair QCheck.small_int QCheck.small_int);
    ]

let unit_tests =
  [
    Alcotest.test_case "add int" `Quick (fun () ->
        check "2+3" true (add (vi 2) (vi 3) = vi 5));
    Alcotest.test_case "add wraps" `Quick (fun () ->
        check "maxint+1" true
          (add (Vint Int32.max_int) (vi 1) = Vint Int32.min_int));
    Alcotest.test_case "add undef" `Quick (fun () ->
        check "undef" true (add Vundef (vi 1) = Vundef));
    Alcotest.test_case "addl pointer" `Quick (fun () ->
        check "ptr+4" true (addl (Vptr (3, 8)) (vl 4) = Vptr (3, 12)));
    Alcotest.test_case "subl pointers same block" `Quick (fun () ->
        check "diff" true (subl (Vptr (3, 12)) (Vptr (3, 4)) = vl 8));
    Alcotest.test_case "subl pointers diff block" `Quick (fun () ->
        check "undef" true (subl (Vptr (3, 12)) (Vptr (4, 4)) = Vundef));
    Alcotest.test_case "divs by zero" `Quick (fun () ->
        check "none" true (divs (vi 4) (vi 0) = None));
    Alcotest.test_case "divs overflow" `Quick (fun () ->
        check "none" true (divs (Vint Int32.min_int) (vi (-1)) = None));
    Alcotest.test_case "divu large" `Quick (fun () ->
        check "unsigned" true
          (divu (Vint (-2l)) (vi 2) = Some (Vint 2147483647l)));
    Alcotest.test_case "shl bounds" `Quick (fun () ->
        check "shl 32 undef" true (shl (vi 1) (vi 32) = Vundef));
    Alcotest.test_case "shl ok" `Quick (fun () ->
        check "1<<4" true (shl (vi 1) (vi 4) = vi 16));
    Alcotest.test_case "sign_ext" `Quick (fun () ->
        check "8-bit" true (sign_ext 8 (vi 0xFF) = vi (-1)));
    Alcotest.test_case "zero_ext" `Quick (fun () ->
        check "8-bit" true (zero_ext 8 (vi 0x1FF) = vi 0xFF));
    Alcotest.test_case "longofint sign" `Quick (fun () ->
        check "neg" true (longofint (vi (-1)) = Vlong (-1L)));
    Alcotest.test_case "longofintu" `Quick (fun () ->
        check "unsigned" true (longofintu (vi (-1)) = Vlong 0xFFFFFFFFL));
    Alcotest.test_case "intoffloat range" `Quick (fun () ->
        check "overflow none" true (intoffloat (Vfloat 1e30) = None));
    Alcotest.test_case "intoffloat ok" `Quick (fun () ->
        check "42" true (intoffloat (Vfloat 42.5) = Some (vi 42)));
    Alcotest.test_case "cmp signed" `Quick (fun () ->
        check "-1 < 1" true (cmp_bool Clt (vi (-1)) (vi 1) = Some true));
    Alcotest.test_case "cmpu unsigned" `Quick (fun () ->
        check "-1 >u 1" true (cmpu_bool Clt (vi (-1)) (vi 1) = Some false));
    Alcotest.test_case "cmplu null vs valid ptr" `Quick (fun () ->
        check "ne" true
          (cmplu_bool ~valid:(fun _ _ -> true) Cne (Vptr (1, 0)) (Vlong 0L)
          = Some true));
    Alcotest.test_case "has_type ptr is long" `Quick (fun () ->
        check "t" true (has_type (Vptr (1, 0)) Tlong));
    Alcotest.test_case "has_type any64" `Quick (fun () ->
        check "t" true (has_type (Vfloat 1.0) Tany64));
    Alcotest.test_case "load_result_typ mismatch" `Quick (fun () ->
        check "undef" true (load_result_typ Tint (vl 3) = Vundef));
  ]

let prop_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck.Test.make ~name:"lessdef reflexive" ~count:200 gen_value (fun v ->
          lessdef v v);
      QCheck.Test.make ~name:"lessdef undef-least" ~count:200 gen_value
        (fun v -> lessdef Vundef v);
      QCheck.Test.make ~name:"lessdef antisym-ish" ~count:200
        (QCheck.pair gen_value gen_value) (fun (a, b) ->
          (not (lessdef a b && lessdef b a)) || a = b);
      QCheck.Test.make ~name:"add commutative" ~count:200
        (QCheck.pair gen_value gen_value) (fun (a, b) -> add a b = add b a);
      QCheck.Test.make ~name:"addl associative on longs" ~count:200
        (QCheck.triple gen_int64 gen_int64 gen_int64) (fun (a, b, c) ->
          addl (addl (Vlong a) (Vlong b)) (Vlong c)
          = addl (Vlong a) (addl (Vlong b) (Vlong c)));
      QCheck.Test.make ~name:"neg involutive" ~count:200 gen_int32 (fun n ->
          neg (neg (Vint n)) = Vint n);
      QCheck.Test.make ~name:"notint involutive" ~count:200 gen_int32 (fun n ->
          notint (notint (Vint n)) = Vint n);
      QCheck.Test.make ~name:"sign_ext idempotent" ~count:200 gen_int32
        (fun n -> sign_ext 8 (sign_ext 8 (Vint n)) = sign_ext 8 (Vint n));
      QCheck.Test.make ~name:"zero_ext bounds" ~count:200 gen_int32 (fun n ->
          match zero_ext 8 (Vint n) with
          | Vint m -> Int32.compare m 0l >= 0 && Int32.compare m 256l < 0
          | _ -> false);
      QCheck.Test.make ~name:"longofint then intoflong" ~count:200 gen_int32
        (fun n -> intoflong (longofint (Vint n)) = Vint n);
      QCheck.Test.make ~name:"cmp trichotomy" ~count:200
        (QCheck.pair gen_int32 gen_int32) (fun (a, b) ->
          let t c = cmp_bool c (Vint a) (Vint b) = Some true in
          List.length (List.filter t [ Clt; Ceq; Cgt ]) = 1);
      QCheck.Test.make ~name:"negate_comparison" ~count:200
        (QCheck.pair gen_int32 gen_int32) (fun (a, b) ->
          List.for_all
            (fun c ->
              cmp_bool (negate_comparison c) (Vint a) (Vint b)
              = Option.map not (cmp_bool c (Vint a) (Vint b)))
            [ Ceq; Cne; Clt; Cle; Cgt; Cge ]);
      QCheck.Test.make ~name:"swap_comparison" ~count:200
        (QCheck.pair gen_int32 gen_int32) (fun (a, b) ->
          List.for_all
            (fun c ->
              cmp_bool (swap_comparison c) (Vint b) (Vint a)
              = cmp_bool c (Vint a) (Vint b))
            [ Ceq; Cne; Clt; Cle; Cgt; Cge ]);
    ]

let suite = ("values", unit_tests @ prop_tests)
