(** Randomized differential testing of the whole pipeline: a generator of
    well-defined C programs (no UB by construction) whose behavior is
    compared across all compilation levels — many random instances of the
    Theorem 3.8 diagram.

    UB avoidance: divisions guarded with [| 1], shifts by literal
    constants < 31, array indices masked to the (power-of-two) array
    size, loops bounded by literal counters, recursion excluded (calls
    only target earlier functions). Signed overflow wraps in our
    semantics, so arithmetic is unrestricted. *)

include Testlib.Test_gen

let differential_fuzz =
  QCheck.Test.make ~name:"random programs agree across all levels" ~count:40
    arb_program (fun src ->
      match Testlib.Testutil.differential src with
      | Ok _ -> true
      | Error e -> QCheck.Test.fail_reportf "%s@.--- program ---@.%s" e src)

let differential_fuzz_noopt =
  QCheck.Test.make ~name:"random programs agree without optimizations"
    ~count:15 arb_program (fun src ->
      match Testlib.Testutil.differential ~options:Driver.Compiler.no_optims src with
      | Ok _ -> true
      | Error e -> QCheck.Test.fail_reportf "%s@.--- program ---@.%s" e src)

(* Random separate compilation: split a two-function program into two
   translation units and check Cor. 3.9. *)
let separate_fuzz =
  QCheck.Test.make ~name:"random separate compilation (Cor. 3.9)" ~count:15
    (QCheck.pair arb_program (QCheck.make (QCheck.Gen.int_range (-50) 50)))
    (fun (src, n) ->
      (* Unit 1: the generated program's helpers; Unit 2: a driver. *)
      let unit1 = src in
      let unit2 =
        "int main0(void);\nint drive(int x) { return main0() + x; }"
      in
      let unit1 = Testlib.Str_replace.replace_main unit1 in
      let p1 = Cfrontend.Cparser.parse_program unit1 in
      let p2 = Cfrontend.Cparser.parse_program unit2 in
      let fuel = Testlib.Testutil.fuel in
      match
        Driver.Linking.separate_compilation_experiment ~fuel [ p1; p2 ]
          ~query:(fun symbols ->
            match
              Iface.Ast.link_list ~internal_sig:Cfrontend.Csyntax.fn_sig
                [ p1; p2 ]
            with
            | Error _ -> None
            | Ok linked -> (
              let ge = Iface.Genv.globalenv ~symbols linked in
              match
                ( Iface.Genv.find_symbol ge (Support.Ident.intern "drive"),
                  Iface.Genv.init_mem ~symbols linked )
              with
              | Some b, Some m ->
                Some
                  { Iface.Li.cq_vf = Memory.Values.Vptr (b, 0);
                    cq_sg =
                      { Memory.Mtypes.sig_args = [ Memory.Mtypes.Tint ];
                        sig_res = Some Memory.Mtypes.Tint };
                    cq_args = [ Memory.Values.Vint (Int32.of_int n) ];
                    cq_mem = m }
              | _ -> None))
      with
      | Ok e -> e.Driver.Linking.exp_agree
      | Error e -> QCheck.Test.fail_reportf "%s@.--- unit1 ---@.%s" e unit1)

let suite =
  ( "random",
    List.map QCheck_alcotest.to_alcotest
      [ differential_fuzz; differential_fuzz_noopt; separate_fuzz ] )
