(** Tiny helper: rename [main] to [main0] in generated sources so a
    driver unit can call into them. *)

let replace_main (src : string) : string =
  let buf = Buffer.create (String.length src) in
  let n = String.length src in
  let i = ref 0 in
  while !i < n do
    if
      !i + 4 <= n
      && String.sub src !i 4 = "main"
      && ((!i = 0) || not (( function
                            | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
                            | _ -> false )
                            src.[!i - 1]))
      && (!i + 4 = n
         || not (( function
                   | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
                   | _ -> false )
                   src.[!i + 4]))
    then begin
      Buffer.add_string buf "main0";
      i := !i + 4
    end
    else begin
      Buffer.add_char buf src.[!i];
      incr i
    end
  done;
  Buffer.contents buf
