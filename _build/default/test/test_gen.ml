(** Re-export of the fuzzing generator library for the test suites. *)

include Fuzz.Gen
