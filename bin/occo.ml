(** occo — the CompCertO-in-OCaml compiler driver.

    Compile a C source file through the 17-pass pipeline, optionally
    dumping intermediate representations and running the program at any
    level through the marshaled simulation conventions.

    Examples:
    {v
    occo compile file.c -dclight -drtl -dasm
    occo run file.c --level asm --entry main
    occo run file.c --level all --entry gcd --args 252,105
    occo derive
    occo table 3
    v} *)

open Support
open Memory.Mtypes
open Memory.Values
open Iface
open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let parse_file path = Cfrontend.Cparser.parse_program (read_file path)

let dump_section title pp =
  Format.printf "=== %s ===@.%t@." title pp

let dump_program_with pp_fun (prog : ('f, 'v) Ast.program) fmt =
  List.iter
    (fun (id, d) ->
      match d with
      | Ast.Gfun (Ast.Internal f) ->
        Format.fprintf fmt "%a:@.%a@." Ident.pp id pp_fun f
      | _ -> ())
    prog.Ast.prog_defs

(** {1 Observability options (shared by compile and run)}

    [--trace FILE.json] records a span per executed pass (wall time,
    before/after program shape) and writes a Chrome trace-event JSON
    loadable in chrome://tracing or Perfetto; [--metrics] prints the
    metrics-registry snapshot as JSON on stdout. [OCCO_TRACE=FILE.json]
    is honored when [--trace] is absent. *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE.json"
        ~env:(Cmd.Env.info "OCCO_TRACE")
        ~doc:
          "Record per-pass/per-run spans and export them as Chrome \
           trace-event JSON to $(docv) (open in chrome://tracing or \
           Perfetto).")

let metrics_flag =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Print the metrics registry (per-pass duration histograms, \
           counters) as JSON on stdout after the command finishes.")

let with_obs trace metrics f =
  if trace = None && not metrics then f ()
  else begin
    Obs.reset_all ();
    Obs.enabled := true;
    let finish () =
      Obs.enabled := false;
      (match trace with
      | Some path -> (
        try
          Obs.Trace.export_chrome path;
          Format.eprintf "trace written to %s@." path
        with Sys_error msg -> Format.eprintf "occo: cannot write trace: %s@." msg)
      | None -> ());
      if metrics then
        Format.printf "%s@." (Obs.Json.to_string (Obs.Metrics.dump_json ()))
    in
    Fun.protect ~finally:finish f
  end

(** {1 compile} *)

let compile_cmd_run file o0 dumps trace metrics =
  with_obs trace metrics @@ fun () ->
  try
    let p = parse_file file in
    let options =
      if o0 then Driver.Compiler.no_optims else Driver.Compiler.all_optims
    in
    match Driver.Compiler.compile ~options p with
    | Error e ->
      Format.eprintf "%s: compilation error: %s@." file e;
      1
    | Ok arts ->
      if List.mem "clight" dumps then
        dump_section "Clight (after SimplLocals)" (fun fmt ->
            Cfrontend.Cprint.pp_program fmt arts.clight2);
      if List.mem "rtl" dumps then
        dump_section "RTL (after optimizations)"
          (dump_program_with Middle.Rtl.pp_function arts.rtl);
      if List.mem "ltl" dumps then
        dump_section "LTL (after tunneling)"
          (dump_program_with Backend.Ltl.pp_function arts.ltl_tunneled);
      if List.mem "linear" dumps then
        dump_section "Linear"
          (dump_program_with Backend.Linear.pp_function arts.linear_clean);
      if List.mem "mach" dumps then
        dump_section "Mach" (dump_program_with Backend.Mach.pp_function arts.mach);
      if List.mem "asm" dumps || dumps = [] then
        dump_section "Asm" (dump_program_with Backend.Asm.pp_function arts.asm);
      0
  with
  | Cfrontend.Cparser.Parse_error (msg, line) ->
    Format.eprintf "%s:%d: parse error: %s@." file line msg;
    1
  | Cfrontend.Clexer.Lex_error (msg, line) ->
    Format.eprintf "%s:%d: lexical error: %s@." file line msg;
    1

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.c")

let o0_flag = Arg.(value & flag & info [ "O0" ] ~doc:"Disable optimizations.")

let dump_flags =
  let mk name doc = Arg.(value & flag & info [ "d" ^ name ] ~doc) in
  let combine cl rtl ltl lin mach asm =
    List.filter_map
      (fun (b, n) -> if b then Some n else None)
      [ (cl, "clight"); (rtl, "rtl"); (ltl, "ltl"); (lin, "linear");
        (mach, "mach"); (asm, "asm") ]
  in
  Term.(
    const combine
    $ mk "clight" "Dump Clight after SimplLocals."
    $ mk "rtl" "Dump RTL after optimizations."
    $ mk "ltl" "Dump LTL."
    $ mk "linear" "Dump Linear."
    $ mk "mach" "Dump Mach."
    $ mk "asm" "Dump Asm.")

let compile_cmd =
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile a C file and dump IRs.")
    Term.(
      const compile_cmd_run $ file_arg $ o0_flag $ dump_flags $ trace_arg
      $ metrics_flag)

(** {1 run} *)

let parse_args (spec : string) (sg : signature) : value list option =
  if spec = "" then Some []
  else
    let parts = String.split_on_char ',' spec in
    if List.length parts <> List.length sg.sig_args then None
    else
      List.fold_right
        (fun (s, t) acc ->
          match acc with
          | None -> None
          | Some vs -> (
            match t with
            | Tint -> Option.map (fun n -> Vint n :: vs) (Int32.of_string_opt s)
            | Tlong -> Option.map (fun n -> Vlong n :: vs) (Int64.of_string_opt s)
            | Tfloat -> Option.map (fun f -> Vfloat f :: vs) (float_of_string_opt s)
            | Tsingle ->
              Option.map (fun f -> Vsingle (to_single f) :: vs)
                (float_of_string_opt s)
            | Tany64 -> None))
        (List.combine parts sg.sig_args)
        (Some [])

let run_cmd_run file level entry args_spec fuel o0 trace metrics =
  with_obs trace metrics @@ fun () ->
  try
    let p = parse_file file in
    let symbols = Ast.prog_defs_names p in
    let options =
      if o0 then Driver.Compiler.no_optims else Driver.Compiler.all_optims
    in
    match Driver.Compiler.compile ~options p with
    | Error e ->
      Format.eprintf "compilation error: %s@." e;
      1
    | Ok arts -> (
      (* Determine the entry signature from the source program. *)
      let sg =
        match Ast.find_def p (Ident.intern entry) with
        | Some (Ast.Gfun fd) ->
          Some (Ast.fundef_sig ~internal_sig:Cfrontend.Csyntax.fn_sig fd)
        | _ -> None
      in
      match sg with
      | None ->
        Format.eprintf "no function named %s@." entry;
        1
      | Some sg -> (
        match parse_args args_spec sg with
        | None ->
          Format.eprintf "bad arguments for signature %a@." pp_signature sg;
          1
        | Some args -> (
          match
            Driver.Runners.main_query ~symbols ~defs:p ~name:entry ~args ~sg ()
          with
          | None ->
            Format.eprintf "cannot build the query@.";
            1
          | Some q ->
            let show name r =
              match r with
              | Ok o ->
                Format.printf "%-8s %a@." name Driver.Runners.pp_c_outcome o
              | Error e -> Format.printf "%-8s marshal error: %s@." name e
            in
            let run_level lv =
              match lv with
              | "clight" ->
                show "clight"
                  (Ok
                     (Driver.Runners.run_c_level
                        (Cfrontend.Clight.semantics ~symbols p) ~fuel q))
              | "rtl" ->
                show "rtl"
                  (Ok
                     (Driver.Runners.run_c_level
                        (Middle.Rtl.semantics ~symbols arts.rtl) ~fuel q))
              | "ltl" ->
                show "ltl"
                  (Driver.Runners.run_l_level
                     (Backend.Ltl.semantics ~symbols arts.ltl_tunneled) ~fuel q)
              | "mach" ->
                show "mach"
                  (Driver.Runners.run_m_level
                     (Backend.Mach.semantics ~symbols arts.mach) ~fuel q)
              | "asm" ->
                show "asm"
                  (Driver.Runners.run_a_level
                     (Backend.Asm.semantics ~symbols arts.asm) ~fuel q)
              | other -> Format.eprintf "unknown level %s@." other
            in
            (if level = "all" then
               List.iter run_level [ "clight"; "rtl"; "ltl"; "mach"; "asm" ]
             else run_level level);
            0)))
  with
  | Cfrontend.Cparser.Parse_error (msg, line) ->
    Format.eprintf "%s:%d: parse error: %s@." file line msg;
    1

let run_cmd =
  let level =
    Arg.(
      value
      & opt string "asm"
      & info [ "level" ] ~docv:"LEVEL"
          ~doc:"Level to run at: clight, rtl, ltl, mach, asm, or all.")
  in
  let entry =
    Arg.(value & opt string "main" & info [ "entry" ] ~docv:"NAME")
  in
  let args_spec =
    Arg.(value & opt string "" & info [ "args" ] ~docv:"V1,V2,...")
  in
  let fuel =
    Arg.(value & opt int 10_000_000 & info [ "fuel" ] ~docv:"STEPS")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run a function of a compiled program at a chosen level, marshaled \
          through the simulation conventions.")
    Term.(
      const run_cmd_run $ file_arg $ level $ entry $ args_spec $ fuel $ o0_flag
      $ trace_arg $ metrics_flag)

(** {1 derive} *)

let derive_cmd =
  Cmd.v
    (Cmd.info "derive"
       ~doc:"Print the machine-checked Thm 3.8 derivation (Figs. 10-11).")
    Term.(
      const (fun () ->
          let out, inc = Convalg.Derive.thm_3_8 () in
          Format.printf "%a@.@.%a@." Convalg.Derive.pp_side out
            Convalg.Derive.pp_side inc;
          if out.Convalg.Derive.ok && inc.Convalg.Derive.ok then 0 else 1)
      $ const ())

(** {1 table} *)

let table_cmd =
  Cmd.v
    (Cmd.info "table" ~doc:"Print a reproduction of a paper table (3 or 5).")
    Term.(
      const (fun n ->
          match n with
          | 3 ->
            List.iter
              (fun (p : Convalg.Derive.pass_info) ->
                Format.printf "%-14s %-12s %-12s %-18s %-18s %d@."
                  (p.pass_name ^ if p.optional then "*" else "")
                  p.pass_source p.pass_target
                  (Convalg.Cterm.to_string p.outgoing)
                  (Convalg.Cterm.to_string p.incoming)
                  (Sloccount.Sloc.measure_pass p.pass_name))
              Convalg.Derive.table3;
            0
          | 5 ->
            List.iter
              (fun (name, sloc) -> Format.printf "%-55s %6d@." name sloc)
              (Sloccount.Sloc.measure_table5 ());
            0
          | _ ->
            Format.eprintf "only tables 3 and 5 are reproducible@.";
            1)
      $ Arg.(required & pos 0 (some int) None & info [] ~docv:"N"))

(** {1 fuzz} *)

let fuzz_cmd =
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Generate random well-defined C programs and check that every \
          pipeline level refines the Clight behavior (differential testing \
          of Thm 3.8).")
    Term.(
      const (fun n seed verbose ->
          let st =
            match seed with
            | Some s -> Random.State.make [| s |]
            | None -> Random.State.make_self_init ()
          in
          let failures = ref 0 in
          for i = 1 to n do
            let src = QCheck.Gen.generate1 ~rand:st (QCheck.gen Fuzz.Gen.arb_program) in
            (match Driver.Differential.differential src with
            | Ok _ -> if verbose then Format.printf "[%d/%d] ok@." i n
            | Error e ->
              incr failures;
              (* Shrink the counterexample: keep reductions on which the
                 differential check still fails (parse errors and other
                 escapes disqualify a candidate). *)
              let still_failing s =
                match Driver.Differential.differential s with
                | Error _ -> true
                | Ok _ | (exception _) -> false
              in
              let small = Fuzz.Gen.minimize ~still_failing src in
              Format.printf
                "=== FAILURE %d (program %d) ===@.%s@.--- program ---@.%s@.--- minimized ---@.%s@.@."
                !failures i e src small)
          done;
          Format.printf "%d programs fuzzed, %d failures@." n !failures;
          if !failures = 0 then 0 else 1)
      $ Arg.(value & opt int 50 & info [ "n" ] ~docv:"COUNT")
      $ Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"SEED")
      $ Arg.(value & flag & info [ "verbose" ]))

(** {1 chaos}

    The fault-injection campaign: seeded semantic mutants of the
    pipeline's own IRs pushed through the differential harness and the
    co-execution checker, plus adversarial environment oracles at the C
    and A levels. Reports a kill-rate matrix (mutant class × detector)
    and dumps survivors for triage. Exit 0 iff every must-kill-class
    mutant was killed and every chaos mode was diagnosed. *)

let chaos_cmd_run seed mutants json_out trace metrics =
  with_obs trace metrics @@ fun () ->
  match Obs.with_enabled (fun () -> Faultinject.Campaign.run ~seed ~mutants ()) with
  | Error d ->
    Format.eprintf "occo chaos: %a@." Support.Diagnostics.pp d;
    1
  | Ok rp ->
    let open Faultinject.Campaign in
    Format.printf "fault-injection campaign: seed %d, %d mutants requested, %d tried@."
      rp.rp_seed rp.rp_requested (List.length rp.rp_results);
    Format.printf "@.%a@." pp_matrix rp;
    Format.printf "%a@." pp_chaos rp;
    Format.printf "%a@." pp_survivors rp;
    (match json_out with
    | Some path -> (
      try
        let oc = open_out path in
        output_string oc (Obs.Json.to_string (to_json rp));
        output_char oc '\n';
        close_out oc;
        Format.eprintf "campaign report written to %s@." path
      with Sys_error msg ->
        Format.eprintf "occo chaos: cannot write report: %s@." msg)
    | None -> ());
    let mk = must_kill_ok rp and ck = chaos_ok rp in
    if not mk then
      Format.printf "FAIL: a must-kill mutant class escaped all detectors@.";
    if not ck then
      Format.printf "FAIL: a chaos mode was not diagnosed as expected@.";
    if mk && ck then 0 else 1

let chaos_cmd =
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run a seeded fault-injection campaign: semantic mutants of the \
          compiler's own IRs pushed through the differential harness and \
          co-execution checker (kill-rate matrix, survivors dumped), plus \
          adversarial environment oracles that must each be diagnosed.")
    Term.(
      const chaos_cmd_run
      $ Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED")
      $ Arg.(value & opt int 60 & info [ "mutants" ] ~docv:"COUNT")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "json" ] ~docv:"FILE.json"
              ~doc:"Write the campaign report as JSON to $(docv).")
      $ trace_arg $ metrics_flag)

let main =
  Cmd.group
    (Cmd.info "occo" ~version:"0.1"
       ~doc:"CompCertO in OCaml: a compiler for certified open C components.")
    [ compile_cmd; run_cmd; derive_cmd; table_cmd; fuzz_cmd; chaos_cmd ]

(** Exit-code contract (documented in the README):
    - 0: success;
    - 1: the command ran and failed (compilation error, refinement
      failure, must-kill mutant escaped, chaos mode undiagnosed);
    - 3: internal error — an exception escaped a command. It is turned
      into a structured diagnostic here; no raw backtrace reaches the
      user;
    - 124: command-line usage error (Cmdliner's convention). *)
let () =
  match Cmd.eval' ~catch:false main with
  | code -> exit code
  | exception e ->
    let d = Support.Diagnostics.of_exn ~phase:Support.Diagnostics.Running e in
    Format.eprintf "occo: internal error: %a@." Support.Diagnostics.pp d;
    exit 3
