(** occo — the CompCertO-in-OCaml compiler driver.

    Compile a C source file through the 17-pass pipeline, optionally
    dumping intermediate representations and running the program at any
    level through the marshaled simulation conventions.

    Examples:
    {v
    occo compile file.c -dclight -drtl -dasm
    occo run file.c --level asm --entry main
    occo run file.c --level all --entry gcd --args 252,105
    occo batch dir/ --jobs 4 --journal batch.journal --resume
    occo derive
    occo table 3
    v} *)

open Support
open Memory.Mtypes
open Memory.Values
open Iface
open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let parse_file path = Cfrontend.Cparser.parse_program (read_file path)

let dump_section title pp =
  Format.printf "=== %s ===@.%t@." title pp

let dump_program_with pp_fun (prog : ('f, 'v) Ast.program) fmt =
  List.iter
    (fun (id, d) ->
      match d with
      | Ast.Gfun (Ast.Internal f) ->
        Format.fprintf fmt "%a:@.%a@." Ident.pp id pp_fun f
      | _ -> ())
    prog.Ast.prog_defs

(** {1 Observability options (shared by compile and run)}

    [--trace FILE.json] records a span per executed pass (wall time,
    before/after program shape) and writes a Chrome trace-event JSON
    loadable in chrome://tracing or Perfetto; [--metrics] prints the
    metrics-registry snapshot as JSON on stdout. [OCCO_TRACE=FILE.json]
    is honored when [--trace] is absent. *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE.json"
        ~env:(Cmd.Env.info "OCCO_TRACE")
        ~doc:
          "Record per-pass/per-run spans and export them as Chrome \
           trace-event JSON to $(docv) (open in chrome://tracing or \
           Perfetto).")

let metrics_flag =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Print the metrics registry (per-pass duration histograms, \
           counters) as JSON on stdout after the command finishes.")

(** [--allocator] picks the register-allocation strategy for every
    compile the command performs, by setting
    {!Passes.Allocation.default_strategy}. *)
let allocator_arg =
  let strategy_conv =
    ( (fun s ->
        match Passes.Allocation.strategy_of_string s with
        | Some st -> `Ok st
        | None ->
          `Error
            (Printf.sprintf
               "unknown allocator %S (expected linear-scan or graph)" s)),
      fun fmt st ->
        Format.pp_print_string fmt (Passes.Allocation.strategy_name st) )
  in
  Arg.(
    value
    & opt (some strategy_conv) None
    & info [ "allocator" ] ~docv:"STRATEGY"
        ~doc:
          "Register allocator: $(b,linear-scan) (the default — a single-pass \
           live-interval fast path, validated on every run and falling back \
           to $(b,graph) when the validator rejects its coloring) or \
           $(b,graph) (the greedy graph coloring).")

let set_allocator st =
  Option.iter (fun st -> Passes.Allocation.default_strategy := st) st

let with_obs trace metrics f =
  if trace = None && not metrics then f ()
  else begin
    Obs.reset_all ();
    Obs.enabled := true;
    let finish () =
      Obs.enabled := false;
      (match trace with
      | Some path -> (
        try
          Obs.Trace.export_chrome path;
          Format.eprintf "trace written to %s@." path
        with Sys_error msg -> Format.eprintf "occo: cannot write trace: %s@." msg)
      | None -> ());
      if metrics then
        Format.printf "%s@." (Obs.Json.to_string (Obs.Metrics.dump_json ()))
    in
    Fun.protect ~finally:finish f
  end

(** {1 Supervised-execution options (shared by batch, fuzz and chaos)}

    These commands run their work as jobs of the {!Harness.Supervisor}:
    each job in a forked worker process with wall-clock (and, for
    batch, memory) watchdogs, transient failures retried with
    exponential backoff + jitter, a per-class circuit breaker shedding
    load after repeated failures, and — when [--journal] is given — an
    fsync'd checkpoint journal that makes [--resume] skip the jobs a
    previous (possibly killed) run already completed. *)

module Sup = Harness.Supervisor

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:"Run up to $(docv) worker processes concurrently.")

let retries_arg =
  Arg.(
    value & opt int 2
    & info [ "retries" ] ~docv:"K"
        ~doc:
          "Retry a transiently-failed job (worker crash, timeout, \
           exhausted budget) up to $(docv) times with exponential \
           backoff and jitter.")

let timeout_arg =
  Arg.(
    value & opt float 120.
    & info [ "timeout" ] ~docv:"SECONDS"
        ~doc:
          "Per-attempt wall-clock limit; a worker past it is killed and \
           the job reported as a timeout. 0 disables the watchdog.")

let journal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"FILE"
        ~doc:
          "Append each terminal job outcome to $(docv) (fsync'd \
           line-JSON). Without $(b,--resume) the journal is started \
           afresh.")

let resume_flag =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Skip jobs the $(b,--journal) already records as completed \
           (after a crash or interrupt, only the remainder runs).")

let supervisor_config ?memlimit_mb ?(breaker_threshold = 5)
    ?(breaker_cooldown_s = 2.) ~jobs ~retries ~timeout_s ~journal ~resume
    ~seed () =
  {
    Sup.default_config with
    Sup.c_jobs = jobs;
    c_retries = max 0 retries;
    c_timeout_us = (if timeout_s <= 0. then None else Some (timeout_s *. 1e6));
    c_memlimit_bytes =
      Option.map (fun mb -> mb * 1024 * 1024) memlimit_mb;
    c_breaker_threshold = breaker_threshold;
    c_breaker_cooldown_us = breaker_cooldown_s *. 1e6;
    c_seed = seed;
    c_journal = journal;
    c_resume = resume;
  }

(** [--resume] without a journal cannot know what to skip: a usage
    error under the documented 124 convention. *)
let check_resume ~resume ~journal k =
  if resume && journal = None then begin
    Format.eprintf "occo: --resume requires --journal FILE@.";
    124
  end
  else k ()

let pp_outcome fmt (o : 'a Sup.outcome) =
  Format.fprintf fmt "%-24s %-8s attempts=%d%s" o.Sup.o_id
    (Sup.status_name o.Sup.o_status)
    o.Sup.o_attempts
    (match o.Sup.o_diag with
    | Some d -> "  " ^ Support.Diagnostics.to_string d
    | None -> "")

(** {1 compile} *)

let compile_cmd_run file o0 dumps trace metrics allocator =
  set_allocator allocator;
  with_obs trace metrics @@ fun () ->
  try
    let p = parse_file file in
    let options =
      if o0 then Driver.Compiler.no_optims else Driver.Compiler.all_optims
    in
    match Driver.Compiler.compile ~options p with
    | Error e ->
      Format.eprintf "%s: compilation error: %s@." file e;
      1
    | Ok arts ->
      if List.mem "clight" dumps then
        dump_section "Clight (after SimplLocals)" (fun fmt ->
            Cfrontend.Cprint.pp_program fmt arts.clight2);
      if List.mem "rtl" dumps then
        dump_section "RTL (after optimizations)"
          (dump_program_with Middle.Rtl.pp_function arts.rtl);
      if List.mem "ltl" dumps then
        dump_section "LTL (after tunneling)"
          (dump_program_with Backend.Ltl.pp_function arts.ltl_tunneled);
      if List.mem "linear" dumps then
        dump_section "Linear"
          (dump_program_with Backend.Linear.pp_function arts.linear_clean);
      if List.mem "mach" dumps then
        dump_section "Mach" (dump_program_with Backend.Mach.pp_function arts.mach);
      if List.mem "asm" dumps || dumps = [] then
        dump_section "Asm" (dump_program_with Backend.Asm.pp_function arts.asm);
      0
  with
  | Cfrontend.Cparser.Parse_error (msg, line) ->
    Format.eprintf "%s:%d: parse error: %s@." file line msg;
    1
  | Cfrontend.Clexer.Lex_error (msg, line) ->
    Format.eprintf "%s:%d: lexical error: %s@." file line msg;
    1

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.c")

let o0_flag = Arg.(value & flag & info [ "O0" ] ~doc:"Disable optimizations.")

let dump_flags =
  let mk name doc = Arg.(value & flag & info [ "d" ^ name ] ~doc) in
  let combine cl rtl ltl lin mach asm =
    List.filter_map
      (fun (b, n) -> if b then Some n else None)
      [ (cl, "clight"); (rtl, "rtl"); (ltl, "ltl"); (lin, "linear");
        (mach, "mach"); (asm, "asm") ]
  in
  Term.(
    const combine
    $ mk "clight" "Dump Clight after SimplLocals."
    $ mk "rtl" "Dump RTL after optimizations."
    $ mk "ltl" "Dump LTL."
    $ mk "linear" "Dump Linear."
    $ mk "mach" "Dump Mach."
    $ mk "asm" "Dump Asm.")

let compile_cmd =
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile a C file and dump IRs.")
    Term.(
      const compile_cmd_run $ file_arg $ o0_flag $ dump_flags $ trace_arg
      $ metrics_flag $ allocator_arg)

(** {1 run} *)

let parse_args (spec : string) (sg : signature) : value list option =
  if spec = "" then Some []
  else
    let parts = String.split_on_char ',' spec in
    if List.length parts <> List.length sg.sig_args then None
    else
      List.fold_right
        (fun (s, t) acc ->
          match acc with
          | None -> None
          | Some vs -> (
            match t with
            | Tint -> Option.map (fun n -> Vint n :: vs) (Int32.of_string_opt s)
            | Tlong -> Option.map (fun n -> Vlong n :: vs) (Int64.of_string_opt s)
            | Tfloat -> Option.map (fun f -> Vfloat f :: vs) (float_of_string_opt s)
            | Tsingle ->
              Option.map (fun f -> Vsingle (to_single f) :: vs)
                (float_of_string_opt s)
            | Tany64 -> None))
        (List.combine parts sg.sig_args)
        (Some [])

let run_cmd_run file level entry args_spec fuel o0 trace metrics allocator =
  set_allocator allocator;
  with_obs trace metrics @@ fun () ->
  try
    let p = parse_file file in
    let symbols = Ast.prog_defs_names p in
    let options =
      if o0 then Driver.Compiler.no_optims else Driver.Compiler.all_optims
    in
    match Driver.Compiler.compile ~options p with
    | Error e ->
      Format.eprintf "compilation error: %s@." e;
      1
    | Ok arts -> (
      (* Determine the entry signature from the source program. *)
      let sg =
        match Ast.find_def p (Ident.intern entry) with
        | Some (Ast.Gfun fd) ->
          Some (Ast.fundef_sig ~internal_sig:Cfrontend.Csyntax.fn_sig fd)
        | _ -> None
      in
      match sg with
      | None ->
        Format.eprintf "no function named %s@." entry;
        1
      | Some sg -> (
        match parse_args args_spec sg with
        | None ->
          Format.eprintf "bad arguments for signature %a@." pp_signature sg;
          1
        | Some args -> (
          match
            Driver.Runners.main_query ~symbols ~defs:p ~name:entry ~args ~sg ()
          with
          | None ->
            Format.eprintf "cannot build the query@.";
            1
          | Some q ->
            let show name r =
              match r with
              | Ok o ->
                Format.printf "%-8s %a@." name Driver.Runners.pp_c_outcome o
              | Error e -> Format.printf "%-8s marshal error: %s@." name e
            in
            let run_level lv =
              match lv with
              | "clight" ->
                show "clight"
                  (Ok
                     (Driver.Runners.run_c_level
                        (Cfrontend.Clight.semantics ~symbols p) ~fuel q))
              | "rtl" ->
                show "rtl"
                  (Ok
                     (Driver.Runners.run_c_level
                        (Middle.Rtl.semantics ~symbols arts.rtl) ~fuel q))
              | "ltl" ->
                show "ltl"
                  (Driver.Runners.run_l_level
                     (Backend.Ltl.semantics ~symbols arts.ltl_tunneled) ~fuel q)
              | "mach" ->
                show "mach"
                  (Driver.Runners.run_m_level
                     (Backend.Mach.semantics ~symbols arts.mach) ~fuel q)
              | "asm" ->
                show "asm"
                  (Driver.Runners.run_a_level
                     (Backend.Asm.semantics ~symbols arts.asm) ~fuel q)
              | other -> Format.eprintf "unknown level %s@." other
            in
            (if level = "all" then
               List.iter run_level [ "clight"; "rtl"; "ltl"; "mach"; "asm" ]
             else run_level level);
            0)))
  with
  | Cfrontend.Cparser.Parse_error (msg, line) ->
    Format.eprintf "%s:%d: parse error: %s@." file line msg;
    1

let run_cmd =
  let level =
    Arg.(
      value
      & opt string "asm"
      & info [ "level" ] ~docv:"LEVEL"
          ~doc:"Level to run at: clight, rtl, ltl, mach, asm, or all.")
  in
  let entry =
    Arg.(value & opt string "main" & info [ "entry" ] ~docv:"NAME")
  in
  let args_spec =
    Arg.(value & opt string "" & info [ "args" ] ~docv:"V1,V2,...")
  in
  let fuel =
    Arg.(value & opt int 10_000_000 & info [ "fuel" ] ~docv:"STEPS")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run a function of a compiled program at a chosen level, marshaled \
          through the simulation conventions.")
    Term.(
      const run_cmd_run $ file_arg $ level $ entry $ args_spec $ fuel $ o0_flag
      $ trace_arg $ metrics_flag $ allocator_arg)

(** {1 derive} *)

let derive_cmd =
  Cmd.v
    (Cmd.info "derive"
       ~doc:"Print the machine-checked Thm 3.8 derivation (Figs. 10-11).")
    Term.(
      const (fun () ->
          let out, inc = Convalg.Derive.thm_3_8 () in
          Format.printf "%a@.@.%a@." Convalg.Derive.pp_side out
            Convalg.Derive.pp_side inc;
          if out.Convalg.Derive.ok && inc.Convalg.Derive.ok then 0 else 1)
      $ const ())

(** {1 table} *)

let table_cmd =
  Cmd.v
    (Cmd.info "table" ~doc:"Print a reproduction of a paper table (3 or 5).")
    Term.(
      const (fun n ->
          match n with
          | 3 ->
            List.iter
              (fun (p : Convalg.Derive.pass_info) ->
                Format.printf "%-14s %-12s %-12s %-18s %-18s %d@."
                  (p.pass_name ^ if p.optional then "*" else "")
                  p.pass_source p.pass_target
                  (Convalg.Cterm.to_string p.outgoing)
                  (Convalg.Cterm.to_string p.incoming)
                  (Sloccount.Sloc.measure_pass p.pass_name))
              Convalg.Derive.table3;
            0
          | 5 ->
            List.iter
              (fun (name, sloc) -> Format.printf "%-55s %6d@." name sloc)
              (Sloccount.Sloc.measure_table5 ());
            0
          | _ ->
            Format.eprintf "only tables 3 and 5 are reproducible@.";
            1)
      $ Arg.(required & pos 0 (some int) None & info [] ~docv:"N"))

(** {1 fuzz} *)

(** The fuzz campaign, rewired onto the supervisor: program [i] is one
    job, generated in the worker from an RNG derived from [(seed, i)],
    so a miscompiled generator case that segfaults or diverges costs
    one worker, not the campaign — and a journal makes long runs
    resumable. *)
let fuzz_cmd_run n seed verbose jobs retries timeout_s journal resume =
  check_resume ~resume ~journal @@ fun () ->
  let seed =
    match seed with
    | Some s -> s
    | None -> truncate (Unix.gettimeofday () *. 1000.) land 0xFFFFFF
  in
  let fuzz_job i =
    {
      Sup.job_id = Printf.sprintf "fuzz-%05d" i;
      job_class = "fuzz";
      job_run =
        (fun ~attempt:_ ->
          let st = Random.State.make [| seed; 104729 * (i + 1) |] in
          let src =
            QCheck.Gen.generate1 ~rand:st (QCheck.gen Fuzz.Gen.arb_program)
          in
          match Driver.Differential.differential src with
          | Ok _ -> Ok None
          | Error e ->
            (* Shrink the counterexample: keep reductions on which the
               differential check still fails (parse errors and other
               escapes disqualify a candidate). *)
            let still_failing s =
              match Driver.Differential.differential s with
              | Error _ -> true
              | Ok _ | (exception _) -> false
            in
            Ok (Some (e, src, Fuzz.Gen.minimize ~still_failing src)));
      job_degraded = None;
    }
  in
  let cfg =
    supervisor_config ~jobs ~retries ~timeout_s ~journal ~resume ~seed ()
  in
  let failures = ref 0 in
  let on_outcome (o : (string * string * string) option Sup.outcome) =
    match o.Sup.o_payload with
    | Some (Some (e, src, small)) ->
      incr failures;
      Format.printf
        "=== FAILURE %d (%s) ===@.%s@.--- program ---@.%s@.--- minimized ---@.%s@.@."
        !failures o.Sup.o_id e src small
    | Some None -> if verbose then Format.printf "%s ok@." o.Sup.o_id
    | None ->
      if not (Sup.status_ok o.Sup.o_status) || verbose then
        Format.printf "%a@." pp_outcome o
  in
  let outcomes = Sup.run ~on_outcome cfg (List.init n fuzz_job) in
  Format.printf "%d programs fuzzed (seed %d), %d failures@." n seed !failures;
  if not (Sup.all_ok outcomes) then
    Format.printf "%a" Sup.pp_summary outcomes;
  if !failures = 0 && Sup.all_ok outcomes then 0 else 1

let fuzz_cmd =
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Generate random well-defined C programs and check that every \
          pipeline level refines the Clight behavior (differential testing \
          of Thm 3.8). Each program is judged in a supervised worker \
          process; see the batch options for retry/backoff, journaling \
          and resume.")
    Term.(
      const fuzz_cmd_run
      $ Arg.(value & opt int 50 & info [ "n" ] ~docv:"COUNT")
      $ Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"SEED")
      $ Arg.(value & flag & info [ "verbose" ])
      $ jobs_arg $ retries_arg $ timeout_arg $ journal_arg $ resume_flag)

(** {1 chaos}

    The fault-injection campaign: seeded semantic mutants of the
    pipeline's own IRs pushed through the differential harness and the
    co-execution checker, plus adversarial environment oracles at the C
    and A levels. Reports a kill-rate matrix (mutant class × detector)
    and dumps survivors for triage. Exit 0 iff every must-kill-class
    mutant was killed and every chaos mode was diagnosed. *)

let chaos_cmd_run seed mutants json_out survivors_out jobs retries timeout_s
    journal resume trace metrics =
  with_obs trace metrics @@ fun () ->
  check_resume ~resume ~journal @@ fun () ->
  let open Faultinject.Campaign in
  (* Survivors stream out incrementally (fsync'd line-JSON), so a
     campaign killed halfway still leaves its triage artifacts. *)
  let survivors_path =
    match survivors_out with
    | Some _ -> survivors_out
    | None -> Option.map (fun p -> p ^ ".survivors.jsonl") json_out
  in
  let sw =
    Option.map
      (Harness.Checkpoint.open_journal ~truncate:(not resume))
      survivors_path
  in
  let on_result r =
    if r.mr_survived then
      Option.iter
        (fun w -> Harness.Checkpoint.append_json w (survivor_to_json r))
        sw
  in
  let cfg =
    supervisor_config ~jobs ~retries ~timeout_s ~journal ~resume ~seed ()
  in
  let result =
    Fun.protect
      ~finally:(fun () -> Option.iter Harness.Checkpoint.close sw)
      (fun () ->
        Obs.with_enabled (fun () ->
            run_supervised ~on_result ~cfg ~seed ~mutants ()))
  in
  match result with
  | Error d ->
    Format.eprintf "occo chaos: %a@." Support.Diagnostics.pp d;
    1
  | Ok (rp, outcomes) ->
    let skipped = Sup.count outcomes Sup.Skipped in
    Format.printf
      "fault-injection campaign: seed %d, %d mutants requested, %d tried%s@."
      rp.rp_seed rp.rp_requested (List.length rp.rp_results)
      (if skipped > 0 then
         Printf.sprintf " (%d skipped via --resume journal)" skipped
       else "");
    Format.printf "@.%a@." pp_matrix rp;
    Format.printf "%a@." pp_chaos rp;
    Format.printf "%a@." pp_survivors rp;
    (match survivors_path with
    | Some p -> Format.eprintf "survivors streamed to %s@." p
    | None -> ());
    (match json_out with
    | Some path -> (
      try
        let oc = open_out path in
        output_string oc (Obs.Json.to_string (to_json rp));
        output_char oc '\n';
        close_out oc;
        Format.eprintf "campaign report written to %s@." path
      with Sys_error msg ->
        Format.eprintf "occo chaos: cannot write report: %s@." msg)
    | None -> ());
    (* A resumed campaign only re-judges what the journal left open, so
       it is held to the weaker "nothing judged this run escaped". *)
    let mk =
      if skipped > 0 then partial_must_kill_ok rp else must_kill_ok rp
    in
    let ck = chaos_ok rp in
    let wk = Sup.all_ok outcomes in
    if not mk then
      Format.printf "FAIL: a must-kill mutant class escaped all detectors@.";
    if not ck then
      Format.printf "FAIL: a chaos mode was not diagnosed as expected@.";
    if not wk then begin
      Format.printf "FAIL: a mutant worker did not complete:@.";
      List.iter
        (fun o ->
          if not (Sup.status_ok o.Sup.o_status) then
            Format.printf "  %a@." pp_outcome o)
        outcomes
    end;
    if mk && ck && wk then 0 else 1

let chaos_cmd =
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run a seeded fault-injection campaign: semantic mutants of the \
          compiler's own IRs pushed through the differential harness and \
          co-execution checker (kill-rate matrix, survivors dumped), plus \
          adversarial environment oracles that must each be diagnosed.")
    Term.(
      const chaos_cmd_run
      $ Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED")
      $ Arg.(value & opt int 60 & info [ "mutants" ] ~docv:"COUNT")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "json" ] ~docv:"FILE.json"
              ~doc:"Write the campaign report as JSON to $(docv).")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "survivors" ] ~docv:"FILE.jsonl"
              ~doc:
                "Stream each survivor as a JSON line to $(docv) the moment \
                 it is found (default: $(b,--json) path + .survivors.jsonl).")
      $ jobs_arg $ retries_arg $ timeout_arg $ journal_arg $ resume_flag
      $ trace_arg $ metrics_flag)

(** {1 compromise}

    The compromised-component campaign: a correct compiled component
    linked (via horizontal composition) against synthesized adversarial
    partners that replay a recorded interaction prefix and then go
    rogue. Reports a partner-mode × safety-property survival matrix.
    Exit 0 iff every rogue partner was detected, the faithful control
    stayed undetected, and every worker completed. *)

let compromise_cmd_run seed partners multi fuel json_out jobs retries
    timeout_s journal resume inject_hang trace metrics =
  with_obs trace metrics @@ fun () ->
  check_resume ~resume ~journal @@ fun () ->
  let open Robust.Campaign in
  let cfg =
    supervisor_config ~jobs ~retries ~timeout_s ~journal ~resume ~seed ()
  in
  let result =
    Obs.with_enabled (fun () ->
        run_supervised ~fuel ~inject_hang ~cfg ~seed ~partners ())
  in
  match result with
  | Error d ->
    Format.eprintf "occo compromise: %a@." Support.Diagnostics.pp d;
    1
  | Ok (rp, outcomes) ->
    let partner_outcomes, hang_outcomes =
      List.partition (fun o -> o.Sup.o_id <> hang_job_id) outcomes
    in
    let skipped = Sup.count partner_outcomes Sup.Skipped in
    Format.printf
      "compromise campaign: seed %d, %d partners requested, %d judged%s@."
      rp.rb_seed rp.rb_requested
      (List.length rp.rb_trials)
      (if skipped > 0 then
         Printf.sprintf " (%d skipped via --resume journal)" skipped
       else "");
    Format.printf "@.%a@." pp_matrix rp;
    Format.printf "%a@." pp_failures rp;
    (match json_out with
    | Some path -> (
      try
        let oc = open_out path in
        output_string oc (Obs.Json.to_string (to_json rp));
        output_char oc '\n';
        close_out oc;
        Format.eprintf "survival matrix written to %s@." path
      with Sys_error msg ->
        Format.eprintf "occo compromise: cannot write report: %s@." msg)
    | None -> ());
    (* A resumed campaign only re-judges what the journal left open, so
       it is held to the weaker "nothing judged this run escaped". *)
    let sv = if skipped > 0 then partial_survival_ok rp else survival_ok rp in
    let wk = Sup.all_ok partner_outcomes in
    (* The injected hang must be *classified* by the watchdog — a
       timeout verdict, not a wedged campaign. *)
    let hg =
      (not inject_hang)
      || List.exists
           (fun o -> o.Sup.o_status = Sup.Timed_out)
           hang_outcomes
    in
    if not sv then
      Format.printf
        "FAIL: a partner trial missed its expectation (see above)@.";
    if not wk then begin
      Format.printf "FAIL: a partner worker did not complete:@.";
      List.iter
        (fun o ->
          if not (Sup.status_ok o.Sup.o_status) then
            Format.printf "  %a@." pp_outcome o)
        partner_outcomes
    end;
    if not hg then
      Format.printf
        "FAIL: the injected diverging partner was not classified as a \
         timeout@.";
    if inject_hang && hg then
      Format.printf "injected diverging partner classified as timeout: OK@.";
    (* The multi-partner arm: two synthesized partners (one faithful,
       one rogue) linked via compose_all against the correct component.
       The survival matrix must still catch every rogue mode. *)
    let mu =
      if multi <= 0 then true
      else begin
        match
          Obs.with_enabled (fun () -> run_multi ~fuel ~seed ~trials:multi ())
        with
        | Error d ->
          Format.printf "FAIL: multi-partner campaign: %a@."
            Support.Diagnostics.pp d;
          false
        | Ok mrp ->
          Format.printf "@.multi-partner (faithful + rogue via ⊕) matrix:@.";
          Format.printf "%a@." pp_matrix mrp;
          Format.printf "%a@." pp_failures mrp;
          let ok = multi_survival_ok mrp in
          if not ok then
            Format.printf
              "FAIL: a multi-partner trial missed its expectation@.";
          ok
      end
    in
    if sv && wk && hg && mu then 0 else 1

let compromise_cmd =
  Cmd.v
    (Cmd.info "compromise"
       ~doc:
         "Run the compromised-component campaign: link a correct compiled \
          component against synthesized adversarial partners (faithful \
          replay up to a seeded rogue activation, then wrong results, \
          callee-save clobbers, wild pointers, re-entrant call storms, \
          silent divergence, early halts) and report which safety \
          properties detect each partner mode.")
    Term.(
      const compromise_cmd_run
      $ Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED")
      $ Arg.(
          value & opt int 14
          & info [ "partners" ] ~docv:"COUNT"
              ~doc:"Number of synthesized partner trials.")
      $ Arg.(
          value & opt int 0
          & info [ "multi" ] ~docv:"COUNT"
              ~doc:
                "Additionally run $(docv) multi-partner trials: the \
                 component linked against $(i,two) synthesized partners \
                 (one faithful, one rogue) composed with compose_all; \
                 the run fails unless every rogue mode is still \
                 detected.")
      $ Arg.(
          value
          & opt int Robust.Campaign.default_fuel
          & info [ "fuel" ] ~docv:"STEPS"
              ~doc:"Step budget per composed run.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "json" ] ~docv:"FILE.json"
              ~doc:"Write the survival matrix as JSON to $(docv).")
      $ jobs_arg $ retries_arg $ timeout_arg $ journal_arg $ resume_flag
      $ Arg.(
          value & flag
          & info [ "inject-hang" ]
              ~doc:
                "Add one deliberately diverging partner worker; the run \
                 fails unless the supervisor classifies it as a timeout \
                 (CI smoke test of the watchdog).")
      $ trace_arg $ metrics_flag)

(** {1 batch}

    Run a directory of C inputs through the pipeline under the
    supervisor: process isolation, watchdogs, retry/backoff, circuit
    breaking, checkpoint/resume, and [-O0] degradation for inputs the
    optimizing pipeline cannot get through. *)

let batch_cmd_run dir jobs retries timeout_s memlimit_mb journal resume
    report_out o0 inject_crash breaker_threshold breaker_cooldown_s trace
    metrics =
  with_obs trace metrics @@ fun () ->
  check_resume ~resume ~journal @@ fun () ->
  let inputs = Driver.Batch.inputs dir in
  if inputs = [] then begin
    Format.eprintf "occo batch: no .c inputs in %s@." dir;
    1
  end
  else begin
    let cfg =
      supervisor_config ?memlimit_mb ~breaker_threshold
        ~breaker_cooldown_s ~jobs ~retries ~timeout_s ~journal ~resume
        ~seed:0 ()
    in
    let batch_jobs =
      List.map
        (fun path ->
          Driver.Batch.compile_job
            ~inject_crash:(inject_crash = Some (Filename.basename path))
            ~optimize:(not o0) path)
        inputs
    in
    let t0 = Unix.gettimeofday () in
    let on_outcome o = Format.printf "%a@." pp_outcome o in
    let outcomes = Sup.run ~on_outcome cfg batch_jobs in
    let elapsed = Unix.gettimeofday () -. t0 in
    let ran =
      List.length outcomes - Sup.count outcomes Sup.Skipped
    in
    Format.printf "%a" Sup.pp_summary outcomes;
    Format.printf "wall %.2fs (%.1f jobs/s over %d executed)@." elapsed
      (if elapsed > 0. then float_of_int ran /. elapsed else 0.)
      ran;
    (match report_out with
    | Some path -> (
      let j =
        match Sup.report_to_json ~payload_to_json:Fun.id outcomes with
        | Obs.Json.Obj kvs ->
          Obs.Json.Obj
            (kvs
            @ [
                ("elapsed_s", Obs.Json.Num elapsed);
                ( "jobs_per_s",
                  Obs.Json.Num
                    (if elapsed > 0. then float_of_int ran /. elapsed else 0.)
                );
              ])
        | j -> j
      in
      try
        let oc = open_out path in
        output_string oc (Obs.Json.to_string j);
        output_char oc '\n';
        close_out oc;
        Format.eprintf "batch report written to %s@." path
      with Sys_error msg ->
        Format.eprintf "occo batch: cannot write report: %s@." msg)
    | None -> ());
    if Sup.all_ok outcomes then 0 else 1
  end

let batch_cmd =
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Compile every .c file in a directory under the supervised \
          batch executor: each input in its own worker process with \
          wall-clock and memory watchdogs, transient failures retried \
          with backoff, repeated failures shed by a circuit breaker, \
          outcomes checkpointed to an fsync'd journal ($(b,--journal)) \
          so $(b,--resume) continues a killed run, and stubborn inputs \
          degraded to -O0 rather than dropped.")
    Term.(
      const batch_cmd_run
      $ Arg.(required & pos 0 (some dir) None & info [] ~docv:"DIR")
      $ jobs_arg $ retries_arg $ timeout_arg
      $ Arg.(
          value
          & opt (some int) None
          & info [ "memlimit" ] ~docv:"MB"
              ~doc:
                "Per-worker major-heap limit; a worker over it exits and \
                 the job is reported as resource-exhausted.")
      $ journal_arg $ resume_flag
      $ Arg.(
          value
          & opt (some string) None
          & info [ "report" ] ~docv:"FILE.json"
              ~doc:"Write the batch report (per-job outcomes) as JSON.")
      $ o0_flag
      $ Arg.(
          value
          & opt (some string) None
          & info [ "inject-crash" ] ~docv:"JOB"
              ~doc:
                "Testing hook: SIGSEGV the worker of job $(docv) on its \
                 first attempt, to exercise crash isolation and retry.")
      $ Arg.(
          value & opt int 5
          & info [ "breaker-threshold" ] ~docv:"N"
              ~doc:
                "Consecutive failures of a job class that trip its \
                 circuit breaker.")
      $ Arg.(
          value & opt float 2.
          & info [ "breaker-cooldown" ] ~docv:"SECONDS"
              ~doc:"Open time before the breaker admits a half-open probe.")
      $ trace_arg $ metrics_flag)

(** {1 bench}

    The full evaluation harness (tables, figures, pipeline and service
    benchmarks), in process. [--runs] is the sampling depth: CI runs a
    fast smoke with a small value; the dev box takes more samples. *)

let bench_cmd =
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Run the evaluation harness (paper tables and figures, \
          whole-pipeline and compile-service benchmarks) and write the \
          metrics snapshot to BENCH_pipeline.json in the current \
          directory.")
    Term.(
      const (fun runs -> Benchkit.Bench_main.main ~runs ())
      $ Arg.(
          value & opt int 20
          & info [ "runs" ] ~docv:"N"
              ~doc:
                "Sampling depth: instrumented pipeline runs feeding the \
                 per-pass histograms, with the per-estimate timing quota \
                 and the service warm rounds scaled proportionally. The \
                 default reproduces the historical sampling; a small \
                 $(docv) is a fast CI smoke."))

(** {1 bench-diff}

    Compare two metrics snapshots (as emitted by the bench harness or
    [--metrics]) with relative per-key thresholds; exit 1 on any
    regression. This replaces CI's old absolute microsecond budget: a
    relative gate survives runners of different speeds. *)

let bench_diff_cmd_run old_path new_path threshold_pct key_overrides
    min_delta_us =
  let load path =
    match Obs.Json.parse_opt (read_file path) with
    | Some j -> Ok j
    | None -> Error (Printf.sprintf "%s: not valid JSON" path)
    | exception Sys_error msg -> Error msg
  in
  match (load old_path, load new_path) with
  | Error msg, _ | _, Error msg ->
    Format.eprintf "occo bench-diff: %s@." msg;
    124
  | Ok baseline, Ok current ->
    let thresholds =
      List.map (fun (k, pct) -> (k, pct /. 100.)) key_overrides
    in
    let verdicts =
      Obs.Bench_diff.compare_snapshots
        ~default_threshold:(threshold_pct /. 100.)
        ~thresholds ~min_delta_us ~baseline ~current ()
    in
    Format.printf "%a" Obs.Bench_diff.pp_report verdicts;
    Format.printf "%a" Obs.Bench_diff.pp_movers verdicts;
    (match Obs.Bench_diff.only_in current baseline with
    | [] -> ()
    | fresh ->
      Format.printf "new keys (not compared): %s@."
        (String.concat ", " fresh));
    (match Obs.Bench_diff.only_in baseline current with
    | [] -> ()
    | gone ->
      Format.printf "keys gone from the new snapshot: %s@."
        (String.concat ", " gone));
    if Obs.Bench_diff.regressions verdicts = [] then 0 else 1

let bench_diff_cmd =
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:
         "Compare two metrics snapshots (every gauge, every histogram's \
          mean_us and p99_us) with relative thresholds; exit 1 if any \
          compared key regressed, 124 if a snapshot is unreadable. Keys \
          present in only one snapshot are reported but never fail the \
          gate; the snapshots' $(b,meta) stamps are ignored.")
    Term.(
      const bench_diff_cmd_run
      $ Arg.(required & pos 0 (some file) None & info [] ~docv:"OLD.json")
      $ Arg.(required & pos 1 (some file) None & info [] ~docv:"NEW.json")
      $ Arg.(
          value & opt float 20.
          & info [ "threshold" ] ~docv:"PCT"
              ~doc:
                "Default relative increase (percent) above which a key \
                 counts as regressed.")
      $ Arg.(
          value
          & opt_all (pair ~sep:'=' string float) []
          & info [ "key" ] ~docv:"PREFIX=PCT"
              ~doc:
                "Per-key threshold override (percent); the longest \
                 matching prefix wins, so $(b,--key pass.=50) covers the \
                 pass family while $(b,--key bench.interp_asm_us=10) pins \
                 one key. Repeatable.")
      $ Arg.(
          value & opt float 10.
          & info [ "min-delta" ] ~docv:"US"
              ~doc:
                "Absolute increase floor: a key under it never regresses, \
                 keeping sub-microsecond jitter out of the gate."))

(** {1 serve / request}

    The long-running compile service and its line-protocol client. The
    daemon accepts one JSON request per line over a Unix-domain socket,
    schedules compiles onto fork-isolated workers, memoizes results in
    the content-addressed cache, and survives — by design — corrupt
    cache entries, poison jobs, overload, blown deadlines, SIGTERM and
    kill -9 (see {!Service.Serve}). *)

let socket_arg =
  Arg.(
    value & opt string "occo.sock"
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket the daemon listens on.")

let serve_cmd_run socket cache_dir jobs retries timeout_s memlimit_mb
    queue_cap degrade_watermark poison_threshold journal resume seed
    inject_crash inject_crash_forever inject_hang inject_corrupt metrics =
  check_resume ~resume ~journal @@ fun () ->
  (* The service's gauges and counters are its operational surface;
     they are always on while it runs ([--metrics] additionally prints
     the snapshot on clean exit). *)
  Obs.reset_all ();
  Obs.enabled := true;
  let cfg =
    {
      Service.Serve.default_config with
      Service.Serve.s_socket = socket;
      s_cache_dir = cache_dir;
      s_jobs = jobs;
      s_retries = max 0 retries;
      s_timeout_us = (if timeout_s <= 0. then None else Some (timeout_s *. 1e6));
      s_memlimit_bytes = Option.map (fun mb -> mb * 1024 * 1024) memlimit_mb;
      s_queue_cap = max 1 queue_cap;
      s_degrade_watermark = max 1 degrade_watermark;
      s_poison_threshold = max 1 poison_threshold;
      s_journal = journal;
      s_resume = resume;
      s_seed = seed;
      s_chaos =
        {
          Service.Serve.ch_crash = inject_crash || inject_crash_forever;
          ch_crash_forever = inject_crash_forever;
          ch_hang = inject_hang;
          ch_corrupt = inject_corrupt;
        };
    }
  in
  Format.eprintf "occo serve: listening on %s (cache %s)@." socket cache_dir;
  let served = Service.Serve.serve cfg in
  Format.eprintf "occo serve: drained after %d request%s@." served
    (if served = 1 then "" else "s");
  if metrics then
    Format.printf "%s@." (Obs.Json.to_string (Obs.Metrics.dump_json ()));
  Obs.enabled := false;
  0

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the compile service: accept line-JSON compile requests \
          over a Unix-domain socket, schedule them onto fork-isolated \
          workers, and memoize results in a checksummed \
          content-addressed cache. Corrupt entries are quarantined and \
          re-derived; requests that repeatedly crash workers are \
          poisoned instead of retried forever; the queue is bounded \
          (overload degrades to -O0, then sheds); SIGTERM drains \
          in-flight work, compacts the journal and exits 0.")
    Term.(
      const serve_cmd_run $ socket_arg
      $ Arg.(
          value & opt string ".occo-cache"
          & info [ "cache" ] ~docv:"DIR"
              ~doc:"Content-addressed artifact cache directory.")
      $ jobs_arg $ retries_arg $ timeout_arg
      $ Arg.(
          value
          & opt (some int) None
          & info [ "memlimit" ] ~docv:"MB"
              ~doc:"Per-worker major-heap cap in megabytes.")
      $ Arg.(
          value & opt int 64
          & info [ "queue-cap" ] ~docv:"N"
              ~doc:
                "Bound on queued requests; beyond it new work is shed \
                 with an $(i,overloaded) diagnostic.")
      $ Arg.(
          value & opt int 32
          & info [ "degrade-watermark" ] ~docv:"N"
              ~doc:
                "Queue depth at which new optimized requests are \
                 degraded to the -O0 fast path.")
      $ Arg.(
          value & opt int 3
          & info [ "poison-threshold" ] ~docv:"K"
              ~doc:
                "Worker crashes after which a request is quarantined \
                 as poisoned and never retried.")
      $ journal_arg $ resume_flag
      $ Arg.(
          value & opt int 0
          & info [ "seed" ] ~docv:"SEED" ~doc:"Retry-jitter determinism seed.")
      $ Arg.(
          value & flag
          & info [ "inject-crash" ]
              ~doc:
                "Chaos: each compile's first attempt kills its own \
                 worker with SIGSEGV (retries then succeed).")
      $ Arg.(
          value & flag
          & info [ "inject-crash-forever" ]
              ~doc:
                "Chaos: every attempt crashes — drives requests into \
                 the poison-quarantine path.")
      $ Arg.(
          value & flag
          & info [ "inject-hang" ]
              ~doc:
                "Chaos: one attempt per request spins until the \
                 wall-clock watchdog kills it.")
      $ Arg.(
          value & flag
          & info [ "inject-corrupt" ]
              ~doc:
                "Chaos: flip a byte in each freshly written cache \
                 summary, forcing the verify-on-read quarantine path.")
      $ metrics_flag)

let request_cmd_run file socket o0 deadline_s ping stats shutdown repeat =
  let op =
    match (ping, stats, shutdown) with
    | true, false, false -> Some Service.Protocol.Ping
    | false, true, false -> Some Service.Protocol.Stats
    | false, false, true -> Some Service.Protocol.Shutdown
    | false, false, false -> Some Service.Protocol.Compile
    | _ -> None
  in
  match op with
  | None ->
    Format.eprintf "occo request: --ping, --stats and --shutdown are \
                    mutually exclusive@.";
    124
  | Some Service.Protocol.Compile when file = None ->
    Format.eprintf "occo request: a compile request needs FILE.c@.";
    124
  | Some op ->
    let source =
      match (op, file) with
      | Service.Protocol.Compile, Some path -> read_file path
      | _ -> ""
    in
    let ok = ref true in
    for i = 1 to max 1 repeat do
      let req =
        {
          Service.Protocol.rq_id = Printf.sprintf "cli-%d" i;
          rq_op = op;
          rq_source = source;
          rq_optimize = not o0;
          rq_deadline_ms =
            Option.map (fun s -> int_of_float (s *. 1000.)) deadline_s;
        }
      in
      match Service.Serve.request ~socket req with
      | Error msg ->
        Format.eprintf "occo request: %s@." msg;
        ok := false
      | Ok reply ->
        Format.printf "%s@." (Obs.Json.to_string reply);
        (match Service.Protocol.reply_status reply with
        | Some ("ok" | "degraded" | "pong" | "stats" | "draining") -> ()
        | _ -> ok := false)
    done;
    if !ok then 0 else 1

let request_cmd =
  Cmd.v
    (Cmd.info "request"
       ~doc:
         "Send one request to a running compile service and print its \
          reply line. Exit 0 if the reply status is ok/degraded (or \
          pong/stats/draining), 1 otherwise or when the daemon is \
          unreachable.")
    Term.(
      const request_cmd_run
      $ Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE.c")
      $ socket_arg
      $ Arg.(
          value & flag
          & info [ "O0" ] ~doc:"Request the unoptimized pipeline.")
      $ Arg.(
          value
          & opt (some float) None
          & info [ "deadline" ] ~docv:"SECONDS"
              ~doc:
                "End-to-end deadline enforced by the daemon, queue wait \
                 included.")
      $ Arg.(value & flag & info [ "ping" ] ~doc:"Liveness probe.")
      $ Arg.(
          value & flag
          & info [ "stats" ] ~doc:"Fetch the daemon's serve.* metrics.")
      $ Arg.(
          value & flag
          & info [ "shutdown" ] ~doc:"Ask the daemon to drain and exit.")
      $ Arg.(
          value & opt int 1
          & info [ "repeat" ] ~docv:"N"
              ~doc:"Send the request $(docv) times (throughput smoke)."))

let main =
  Cmd.group
    (Cmd.info "occo" ~version:"0.1"
       ~doc:"CompCertO in OCaml: a compiler for certified open C components.")
    [ compile_cmd; run_cmd; batch_cmd; derive_cmd; table_cmd; fuzz_cmd;
      chaos_cmd; compromise_cmd; bench_cmd; bench_diff_cmd; serve_cmd;
      request_cmd ]

(** An interrupt (SIGINT/SIGTERM) raised as an exception at the next
    safe point, so it unwinds through every [Fun.protect] on the way
    out: [with_obs] exports the trace and prints the metrics snapshot,
    the supervisor kills its workers and closes the checkpoint journal
    (each line of which was already fsync'd — the run is resumable),
    and the survivors stream is closed. Workers reset these handlers to
    the default, so a batch's children still die instantly. *)
exception Interrupted of string

let install_interrupt_handlers () =
  let arm signal name =
    try
      Sys.set_signal signal (Sys.Signal_handle (fun _ -> raise (Interrupted name)))
    with Invalid_argument _ | Sys_error _ -> ()
  in
  arm Sys.sigint "SIGINT";
  arm Sys.sigterm "SIGTERM"

(** Exit-code contract (documented in the README):
    - 0: success;
    - 1: the command ran and failed (compilation error, refinement
      failure, batch job failed/crashed/shed, must-kill mutant escaped,
      chaos mode undiagnosed, interrupted mid-run);
    - 3: internal error — an exception escaped a command. It is turned
      into a structured diagnostic here; no raw backtrace reaches the
      user;
    - 124: command-line usage error (Cmdliner's convention, shared by
      [--resume] without [--journal]). *)
(* The pipeline is allocation-heavy even after the mutable-core work:
   a full compile churns through a few hundred kwords of short-lived
   sets, maps and closures, and the stock 256kw minor heap forces a
   minor collection every couple of passes — the pauses land inside
   whichever pass crosses the threshold and dominate its histogram.
   A larger nursery moves those collections out of the hot paths;
   OCAMLRUNPARAM still wins if the user sets one explicitly. *)
let tune_gc () =
  if Option.is_none (Sys.getenv_opt "OCAMLRUNPARAM") then
    Gc.set { (Gc.get ()) with Gc.minor_heap_size = 2 * 1024 * 1024 }

let () =
  tune_gc ();
  install_interrupt_handlers ();
  match Cmd.eval' ~catch:false main with
  | code -> exit code
  | exception Interrupted signal ->
    Format.eprintf
      "occo: interrupted by %s; sinks flushed, checkpoint journal intact \
       (use --resume)@."
      signal;
    exit 1
  | exception e ->
    let d = Support.Diagnostics.of_exn ~phase:Support.Diagnostics.Running e in
    Format.eprintf "occo: internal error: %a@." Support.Diagnostics.pp d;
    exit 3
