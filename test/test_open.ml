(** Open-component tests: programs with genuine external calls, run at
    the source and target levels against environment oracles defined at
    each level, comparing the {e observable interaction sequences}
    (requirement #2 of the paper: the correctness theorem relates the
    behaviors of corresponding source and target components directly).

    This also exercises the co-execution checker [Core.Coexec] — the
    executable Fig. 6 — on open components: at every outgoing call the
    marshaled target question must be related to the source question by
    the composite convention [CA]. *)

open Support
open Memory.Mtypes
open Memory.Values
open Iface
open Iface.Li

let check = Alcotest.(check bool)
let fuel = 1_000_000

(* Primitives: a pure function the environment provides, and a logger. *)
let prims oracle_state =
  [
    { Driver.Io_oracle.prim_name = "env_twice";
      prim_sig = { sig_args = [ Tint ]; sig_res = Some Tint };
      prim_impl =
        (fun args -> match args with [ n ] -> Int32.mul 2l n | _ -> 0l) };
    { Driver.Io_oracle.prim_name = "env_out";
      prim_sig = { sig_args = [ Tint; Tint ]; sig_res = Some Tint };
      prim_impl =
        (fun args ->
          oracle_state := args :: !oracle_state;
          0l) };
  ]

let src =
  {|
int env_twice(int n);
int env_out(int chan, int v);

int pipeline(int n) {
  int acc = 0;
  for (int i = 0; i < n; i++) {
    int d = env_twice(i + acc);
    env_out(1, d);
    acc = acc + d;
  }
  return acc;
}
|}

let program = Cfrontend.Cparser.parse_program src
let symbols = Ast.prog_defs_names program

let query n =
  let ge = Genv.globalenv ~symbols program in
  let m = Option.get (Genv.init_mem ~symbols program) in
  { cq_vf = Genv.symbol_address ge (Ident.intern "pipeline") 0;
    cq_sg = { sig_args = [ Tint ]; sig_res = Some Tint };
    cq_args = [ Vint (Int32.of_int n) ]; cq_mem = m }

(* Run the source (Clight, C-level oracle) and the target (Asm, A-level
   oracle) and compare results and logged interactions. *)
let run_both n =
  let st1 = ref [] and st2 = ref [] in
  let rec1, log1 = Driver.Io_oracle.make_log () in
  let rec2, log2 = Driver.Io_oracle.make_log () in
  let c_oracle = Driver.Io_oracle.c_oracle ~symbols (prims st1) rec1 in
  let a_oracle = Driver.Io_oracle.a_oracle ~symbols (prims st2) rec2 in
  let l1 = Cfrontend.Clight.semantics ~symbols program in
  let arts = Errors.get (Driver.Compiler.compile program) in
  let l2 = Backend.Asm.semantics ~symbols arts.asm in
  let q = query n in
  let o1 = Core.Smallstep.run ~fuel l1 ~oracle:c_oracle q in
  let o2 =
    match Driver.Runners.cc_ca.Core.Simconv.fwd_query q with
    | Some (w, aq) -> (
      match Core.Smallstep.run ~fuel l2 ~oracle:a_oracle aq with
      | Core.Smallstep.Final (t, ar) -> (
        match Driver.Runners.cc_ca.Core.Simconv.bwd_reply w ar with
        | Some cr -> Core.Smallstep.Final (t, cr)
        | None -> Core.Smallstep.Goes_wrong (t, "unmarshalable reply"))
      | Core.Smallstep.Goes_wrong (t, why) -> Core.Smallstep.Goes_wrong (t, why)
      | Core.Smallstep.Env_stuck (t, _) ->
        Core.Smallstep.Goes_wrong (t, "A-level oracle refused")
      | Core.Smallstep.Env_violation (t, why) ->
        Core.Smallstep.Env_violation (t, why)
      | Core.Smallstep.Out_of_fuel t -> Core.Smallstep.Out_of_fuel t
      | Core.Smallstep.Refused -> Core.Smallstep.Refused)
    | None -> Core.Smallstep.Goes_wrong ([], "marshal failed")
  in
  (o1, o2, log1 (), log2 ())

let observable_tests =
  [
    Alcotest.test_case "results agree through the environment" `Quick
      (fun () ->
        let o1, o2, _, _ = run_both 5 in
        match (o1, o2) with
        | Core.Smallstep.Final (_, r1), Core.Smallstep.Final (_, r2) ->
          check "lessdef" true (lessdef r1.cr_res r2.cr_res);
          check "defined" true (r1.cr_res <> Vundef)
        | _ -> Alcotest.fail "expected two final outcomes");
    Alcotest.test_case "interaction sequences coincide" `Quick (fun () ->
        let _, _, log1, log2 = run_both 6 in
        Alcotest.(check int) "same length" (List.length log1) (List.length log2);
        List.iter2
          (fun (e1 : Driver.Io_oracle.log_entry) e2 ->
            check "same call" true
              (e1.call_name = e2.Driver.Io_oracle.call_name
              && e1.call_args = e2.Driver.Io_oracle.call_args
              && e1.call_res = e2.Driver.Io_oracle.call_res))
          log1 log2);
    Alcotest.test_case "interaction order is source order" `Quick (fun () ->
        let _, _, log1, _ = run_both 2 in
        let names = List.map (fun e -> e.Driver.Io_oracle.call_name) log1 in
        check "alternating" true
          (names = [ "env_twice"; "env_out"; "env_twice"; "env_out" ]));
    Alcotest.test_case "no environment => both stuck on the call" `Quick
      (fun () ->
        let l1 = Cfrontend.Clight.semantics ~symbols program in
        match Core.Smallstep.run ~fuel l1 ~oracle:(fun _ -> None) (query 1) with
        | Core.Smallstep.Env_stuck (_, q) ->
          check "stuck on env_twice" true
            (Driver.Io_oracle.name_of_vf ~symbols q.cq_vf = Some "env_twice")
        | _ -> Alcotest.fail "expected env-stuck");
  ]

(* The Coexec checker (Fig. 6) on an open component pair: Clight vs Asm
   under the composite convention CA; the environment behavior is given
   once at the source level and transported by the convention. *)
let coexec_tests =
  [
    Alcotest.test_case "co-execution Clight vs Asm (open, Fig. 6)" `Quick
      (fun () ->
        let st = ref [] in
        let rec_, _ = Driver.Io_oracle.make_log () in
        let c_oracle = Driver.Io_oracle.c_oracle ~symbols (prims st) rec_ in
        let arts = Errors.get (Driver.Compiler.compile program) in
        (* The source is Clight after SimplLocals: its locals are lifted
           to temporaries, so its memory state is exactly the shared
           globals — the identity fragment of R* that [cc_ca] checks.
           (Pre-SimplLocals Clight relates by a nontrivial injection,
           which is checked at the memory-model level instead.) *)
        let l1 =
          Cfrontend.Clight.semantics ~mode:`Temp_params ~symbols arts.clight2
        in
        let l2 = Backend.Asm.semantics ~symbols arts.asm in
        match
          Core.Coexec.check ~fuel ~l1 ~l2 ~cc_in:Driver.Runners.cc_ca
            ~cc_out:Driver.Runners.cc_ca ~oracle:c_oracle (query 4)
        with
        | Core.Coexec.Pass -> ()
        | Core.Coexec.Fail msg -> Alcotest.failf "co-execution failed: %s" msg);
    Alcotest.test_case "co-execution detects a lying environment" `Quick
      (fun () ->
        (* If the target-level environment answered differently from the
           source-level one, the reply check must flag it. We simulate
           this by comparing against a *different* program rather than
           tampering with the checker: Clight of a program returning
           n+1 against Asm of the original — queries relate but final
           answers must not. *)
        let src' = Testlib.Str_replace.replace_main src in
        ignore src';
        let other =
          Cfrontend.Cparser.parse_program
            "int env_twice(int n);\nint env_out(int c, int v);\nint pipeline(int n) { return n + 1; }"
        in
        let st = ref [] in
        let rec_, _ = Driver.Io_oracle.make_log () in
        let c_oracle = Driver.Io_oracle.c_oracle ~symbols (prims st) rec_ in
        let arts = Errors.get (Driver.Compiler.compile program) in
        let other2 = Errors.get (Passes.Simpllocals.transf_program other) in
        let l1 =
          Cfrontend.Clight.semantics ~mode:`Temp_params ~symbols other2
        in
        let l2 = Backend.Asm.semantics ~symbols arts.asm in
        match
          Core.Coexec.check ~fuel ~l1 ~l2 ~cc_in:Driver.Runners.cc_ca
            ~cc_out:Driver.Runners.cc_ca ~oracle:c_oracle (query 4)
        with
        | Core.Coexec.Pass -> Alcotest.fail "expected a counterexample"
        | Core.Coexec.Fail _ -> ());
  ]

let suite = ("open-components", observable_tests @ coexec_tests)
