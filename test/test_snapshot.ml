(** Tests for the cross-process telemetry of ISSUE 6: non-finite JSON
    numbers, percentile histogram sketches (with a QCheck bound against
    exact quantiles), snapshot capture/merge (in-process and across a
    real fork), the [Trace.pop] exception-unwind path, worker pipe-write
    failure classification, supervisor service gauges, breaker
    transition events, and the [bench-diff] regression gate (library
    level and the actual [occo bench-diff] exit codes). *)

module Worker = Harness.Worker
module Sup = Harness.Supervisor
module Breaker = Harness.Breaker

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let with_fresh_obs f =
  Obs.reset_all ();
  Obs.with_enabled f

let tmpfile name =
  let path = Filename.temp_file "occo-snapshot-" ("-" ^ name) in
  at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
  path

let write_file path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

(* ------------------------------------------------------------------ *)
(* Json: non-finite numbers                                           *)
(* ------------------------------------------------------------------ *)

let json_tests =
  [
    Alcotest.test_case "non-finite numbers serialize as null" `Quick (fun () ->
        checks "inf" "null" (Obs.Json.to_string (Obs.Json.Num Float.infinity));
        checks "-inf" "null"
          (Obs.Json.to_string (Obs.Json.Num Float.neg_infinity));
        checks "nan" "null" (Obs.Json.to_string (Obs.Json.Num Float.nan)));
    Alcotest.test_case "documents with non-finite numbers round-trip" `Quick
      (fun () ->
        let doc =
          Obs.Json.Obj
            [
              ("ok", Obs.Json.Num 3.5);
              ("inf", Obs.Json.Num Float.infinity);
              ("nan", Obs.Json.Num Float.nan);
              ("list", Obs.Json.List [ Obs.Json.Num Float.neg_infinity ]);
            ]
        in
        match Obs.Json.parse (Obs.Json.to_string doc) with
        | Obs.Json.Obj kvs ->
          check "finite survives" true
            (List.assoc "ok" kvs = Obs.Json.Num 3.5);
          check "inf reads back as null" true
            (List.assoc "inf" kvs = Obs.Json.Null);
          check "nan reads back as null" true
            (List.assoc "nan" kvs = Obs.Json.Null);
          check "nested non-finite reads back as null" true
            (List.assoc "list" kvs = Obs.Json.List [ Obs.Json.Null ])
        | _ -> Alcotest.fail "expected an object back");
  ]

(* ------------------------------------------------------------------ *)
(* Histogram sketch: percentiles                                      *)
(* ------------------------------------------------------------------ *)

(* Exact q-quantile under the same rank convention as the sketch. *)
let exact_quantile (sample : float list) (q : float) : float =
  let a = Array.of_list sample in
  Array.sort compare a;
  let n = Array.length a in
  let rank = max 1 (min n (int_of_float (Float.ceil (q *. float_of_int n)))) in
  a.(rank - 1)

let sketch_tests =
  [
    Alcotest.test_case "dump_json reports p50/p90/p99" `Quick (fun () ->
        with_fresh_obs (fun () ->
            for i = 1 to 100 do
              Obs.Metrics.observe "h" (float_of_int i)
            done);
        match
          Option.bind
            (Obs.Json.member "histograms" (Obs.Metrics.dump_json ()))
            (Obs.Json.member "h")
        with
        | Some h ->
          List.iter
            (fun field ->
              check (field ^ " present") true
                (Option.bind (Obs.Json.member field h) Obs.Json.to_num <> None))
            [ "count"; "sum_us"; "min_us"; "max_us"; "mean_us"; "p50_us";
              "p90_us"; "p99_us" ];
          let f field =
            Option.get (Option.bind (Obs.Json.member field h) Obs.Json.to_num)
          in
          check "p50 <= p90 <= p99" true
            (f "p50_us" <= f "p90_us" && f "p90_us" <= f "p99_us");
          check "percentiles within [min, max]" true
            (f "min_us" <= f "p50_us" && f "p99_us" <= f "max_us")
        | None -> Alcotest.fail "histogram h missing from dump_json");
    Alcotest.test_case "quantiles of a point mass are the point" `Quick
      (fun () ->
        with_fresh_obs (fun () ->
            for _ = 1 to 50 do
              Obs.Metrics.observe "point" 250.
            done);
        let s = Option.get (Obs.Metrics.histogram_stats "point") in
        (* min/max clamping makes a constant sample exact despite the
           bucket representative. *)
        check "p50 exact" true (s.Obs.Metrics.p50 = 250.);
        check "p99 exact" true (s.Obs.Metrics.p99 = 250.));
    (let slack = 1.2 ** 1.5 in
     (* One bucket of relative error (gamma), plus half a bucket for
        the representative sitting mid-bucket: gamma^1.5 covers both
        sides of every rank-convention edge case. *)
     QCheck_alcotest.to_alcotest
       (QCheck.Test.make ~name:"sketch quantiles within one bucket of exact"
          ~count:200
          QCheck.(
            list_of_size (Gen.int_range 5 300)
              (map (fun x -> 1.0 +. x) (float_bound_exclusive 50_000.)))
          (fun sample ->
            QCheck.assume (sample <> []);
            Obs.reset_all ();
            Obs.with_enabled (fun () ->
                List.iter (Obs.Metrics.observe "qh") sample);
            List.for_all
              (fun q ->
                let approx = Option.get (Obs.Metrics.quantile "qh" q) in
                let exact = exact_quantile sample q in
                approx <= exact *. slack && approx >= exact /. slack)
              [ 0.5; 0.9; 0.99 ])));
  ]

(* ------------------------------------------------------------------ *)
(* Snapshot capture / merge (in-process)                              *)
(* ------------------------------------------------------------------ *)

let snapshot_tests =
  [
    Alcotest.test_case "merge adds counters, LWW gauges, merges sketches"
      `Quick (fun () ->
        (* Build the "worker" registry and capture it... *)
        let snap =
          with_fresh_obs (fun () ->
              Obs.Metrics.incr_counter ~by:3 "shared.count";
              Obs.Metrics.incr_counter "worker.only";
              Obs.Metrics.set_gauge "shared.gauge" 2.0;
              for i = 51 to 100 do
                Obs.Metrics.observe "shared.hist" (float_of_int i)
              done;
              Obs.Trace.with_span "w" (fun () -> ());
              Obs.Snapshot.capture ())
        in
        (* ...then the "parent" registry, and fold the snapshot in. *)
        with_fresh_obs (fun () ->
            Obs.Metrics.incr_counter ~by:2 "shared.count";
            Obs.Metrics.set_gauge "shared.gauge" 1.0;
            for i = 1 to 50 do
              Obs.Metrics.observe "shared.hist" (float_of_int i)
            done);
        Obs.Snapshot.merge ~pid:4242 snap;
        checki "counters add" 5 (Obs.Metrics.get_counter "shared.count");
        checki "worker-only counter appears" 1
          (Obs.Metrics.get_counter "worker.only");
        check "gauge is last-write-wins (the snapshot)" true
          (Obs.Metrics.get_gauge "shared.gauge" = Some 2.0);
        let s = Option.get (Obs.Metrics.histogram_stats "shared.hist") in
        checki "histogram counts merge" 100 s.Obs.Metrics.count;
        check "merged min/max span both halves" true
          (s.Obs.Metrics.min = 1. && s.Obs.Metrics.max = 100.);
        (* p50 of 1..100 is 50; one bucket of sketch slack. *)
        check "merged p50 lands near the true median" true
          (s.Obs.Metrics.p50 >= 50. /. 1.2 && s.Obs.Metrics.p50 <= 50. *. 1.2);
        match Obs.Trace.grafted () with
        | [ (4242, [ w ]) ] -> checks "grafted root" "w" w.Obs.Trace.name
        | _ -> Alcotest.fail "expected one grafted forest under pid 4242");
    Alcotest.test_case "chrome export renders one lane per worker pid" `Quick
      (fun () ->
        with_fresh_obs (fun () ->
            Obs.Trace.with_span "parent-span" (fun () -> ()));
        List.iter
          (fun pid ->
            Obs.Trace.graft ~pid
              [
                {
                  Obs.Trace.name = Printf.sprintf "job-%d" pid;
                  seq = 1;
                  start_us = 10.;
                  dur_us = 5.;
                  attrs = [];
                  children = [];
                };
              ])
          [ 1001; 1002 ];
        let j = Obs.Trace.to_chrome_json () in
        let events =
          Option.get (Option.bind (Obs.Json.member "traceEvents" j) Obs.Json.to_list)
        in
        let xs =
          List.filter
            (fun e -> Obs.Json.member "ph" e = Some (Obs.Json.Str "X"))
            events
        in
        let pids =
          List.sort_uniq compare
            (List.filter_map
               (fun e -> Option.bind (Obs.Json.member "pid" e) Obs.Json.to_num)
               xs)
        in
        checki "three distinct pid lanes" 3 (List.length pids);
        let metas =
          List.filter
            (fun e -> Obs.Json.member "ph" e = Some (Obs.Json.Str "M"))
            events
        in
        checki "one process_name per lane" 3 (List.length metas);
        check "every X event has ts and dur" true
          (List.for_all
             (fun e ->
               Obs.Json.member "ts" e <> None && Obs.Json.member "dur" e <> None)
             xs));
    Alcotest.test_case "single-process trace keeps its all-X shape" `Quick
      (fun () ->
        with_fresh_obs (fun () ->
            Obs.Trace.with_span "solo" (fun () -> ()));
        let events =
          Option.get
            (Option.bind
               (Obs.Json.member "traceEvents" (Obs.Trace.to_chrome_json ()))
               Obs.Json.to_list)
        in
        check "no metadata events without worker lanes" true
          (List.for_all
             (fun e -> Obs.Json.member "ph" e = Some (Obs.Json.Str "X"))
             events));
  ]

(* ------------------------------------------------------------------ *)
(* Trace.pop unwind                                                   *)
(* ------------------------------------------------------------------ *)

let unwind_tests =
  [
    Alcotest.test_case "pop unwinds dropped open spans to a wellformed tree"
      `Quick (fun () ->
        with_fresh_obs (fun () ->
            let a = Obs.Trace.push "a" [] in
            let _b = Obs.Trace.push "b" [] in
            let _c = Obs.Trace.push "c" [] in
            (* An exception unwound past b and c without closing them;
               closing a must drop them rather than corrupt the stack. *)
            Obs.Trace.pop a;
            check "stack is empty again" true (Obs.Trace.current () = None);
            Obs.Trace.with_span "later" (fun () -> ()));
        let roots = Obs.Trace.roots () in
        Alcotest.(check (list string))
          "both roots recorded, dropped spans gone" [ "a"; "later" ]
          (List.map (fun s -> s.Obs.Trace.name) roots);
        check "the unwound span has no phantom children" true
          ((List.hd roots).Obs.Trace.children = []));
  ]

(* ------------------------------------------------------------------ *)
(* bench-diff                                                         *)
(* ------------------------------------------------------------------ *)

let snapshot_json ?(meta = "") ~interp_asm ~compile () =
  Printf.sprintf
    {|{%s"gauges": {"bench.interp_asm_us": %f, "bench.compile_us": %f},
       "histograms": {"pass.Allocation":
         {"count": 10, "sum_us": 1000, "min_us": 90, "max_us": 110,
          "mean_us": 100, "p50_us": 100, "p90_us": 108, "p99_us": 110}}}|}
    meta interp_asm compile

let bench_diff_tests =
  [
    Alcotest.test_case "a 30%% slowdown regresses; meta is ignored" `Quick
      (fun () ->
        let baseline =
          Obs.Json.parse
            (snapshot_json
               ~meta:{|"meta": {"git_rev": "aaa", "hostname": "old-box"},|}
               ~interp_asm:4000. ~compile:1500. ())
        and current =
          Obs.Json.parse
            (snapshot_json
               ~meta:{|"meta": {"git_rev": "bbb", "hostname": "new-box"},|}
               ~interp_asm:5200. ~compile:1500. ())
        in
        let vs =
          Obs.Bench_diff.compare_snapshots ~baseline ~current ()
        in
        let r = Obs.Bench_diff.regressions vs in
        checki "exactly the slowed key regresses" 1 (List.length r);
        checks "it is interp_asm" "bench.interp_asm_us"
          (List.hd r).Obs.Bench_diff.v_key;
        check "meta keys are never compared" true
          (List.for_all
             (fun v ->
               not
                 (String.length v.Obs.Bench_diff.v_key >= 4
                 && String.sub v.Obs.Bench_diff.v_key 0 4 = "meta"))
             vs));
    Alcotest.test_case "keys in only one snapshot never regress" `Quick
      (fun () ->
        let baseline =
          Obs.Json.parse {|{"gauges": {"gone_us": 100.0, "stable_us": 50.0}}|}
        and current =
          Obs.Json.parse {|{"gauges": {"fresh_us": 100.0, "stable_us": 50.0}}|}
        in
        let vs = Obs.Bench_diff.compare_snapshots ~baseline ~current () in
        checki "only the shared key is compared" 1 (List.length vs);
        check "no regression" true (Obs.Bench_diff.regressions vs = []);
        Alcotest.(check (list string))
          "retired key reported" [ "gone_us" ]
          (Obs.Bench_diff.only_in baseline current);
        Alcotest.(check (list string))
          "new key reported" [ "fresh_us" ]
          (Obs.Bench_diff.only_in current baseline));
    Alcotest.test_case "per-key threshold override: longest prefix wins" `Quick
      (fun () ->
        let baseline = Obs.Json.parse {|{"gauges": {"pass.x_us": 100.0}}|}
        and current = Obs.Json.parse {|{"gauges": {"pass.x_us": 160.0}}|} in
        let regressed thresholds =
          Obs.Bench_diff.regressions
            (Obs.Bench_diff.compare_snapshots ~thresholds ~baseline ~current ())
          <> []
        in
        check "default 20%% trips on +60%%" true (regressed []);
        check "family-wide 100%% absorbs it" false
          (regressed [ ("pass.", 1.0) ]);
        check "a longer exact-key override beats the family" true
          (regressed [ ("pass.", 1.0); ("pass.x_us", 0.10) ]));
    Alcotest.test_case "legacy _us spellings of non-time histograms still gate"
      `Quick (fun () ->
        (* Baselines committed before the unit-honest key change
           spelled every histogram field with [_us], including the
           dimensionless alloc_words sketches. A new snapshot spells
           them plainly; both must meet on the canonical key so the
           old baseline still detects a regression. *)
        let baseline =
          Obs.Json.parse
            {|{"histograms": {"pass.Allocation.alloc_words":
                 {"count": 10, "sum_us": 1000, "mean_us": 100, "p99_us": 110}}}|}
        and current =
          Obs.Json.parse
            {|{"histograms": {"pass.Allocation.alloc_words":
                 {"count": 10, "sum": 3000, "mean": 300, "p99": 330}}}|}
        in
        let vs = Obs.Bench_diff.compare_snapshots ~baseline ~current () in
        Alcotest.(check (list string))
          "compared under the canonical unit-honest keys"
          [
            "pass.Allocation.alloc_words.mean";
            "pass.Allocation.alloc_words.p99";
          ]
          (List.map (fun v -> v.Obs.Bench_diff.v_key) vs);
        checki "the 3x growth regresses both keys" 2
          (List.length (Obs.Bench_diff.regressions vs)));
    Alcotest.test_case "sub-floor absolute deltas never regress" `Quick
      (fun () ->
        let baseline = Obs.Json.parse {|{"gauges": {"tiny_us": 2.0}}|}
        and current = Obs.Json.parse {|{"gauges": {"tiny_us": 6.0}}|} in
        (* +200% relative, but only +4us absolute: noise, not signal. *)
        check "no regression under the min-delta floor" true
          (Obs.Bench_diff.regressions
             (Obs.Bench_diff.compare_snapshots ~baseline ~current ())
          = []));
    Alcotest.test_case "occo bench-diff exits 1 on a 30%% regression, 0 \
                        otherwise, 124 on garbage" `Quick (fun () ->
        let old_p = tmpfile "old.json" and new_p = tmpfile "new.json" in
        write_file old_p (snapshot_json ~interp_asm:4000. ~compile:1500. ());
        write_file new_p (snapshot_json ~interp_asm:5200. ~compile:1500. ());
        let occo args =
          Sys.command
            (Filename.quote_command "../bin/occo.exe"
               ~stdout:Filename.null ~stderr:Filename.null args)
        in
        checki "regression exits 1" 1
          (occo [ "bench-diff"; old_p; new_p ]);
        checki "identical snapshots exit 0" 0
          (occo [ "bench-diff"; old_p; old_p ]);
        checki "a wide --threshold waves the same diff through" 0
          (occo [ "bench-diff"; old_p; new_p; "--threshold"; "200" ]);
        checki "a tight --key override fails it again" 1
          (occo
             [ "bench-diff"; old_p; new_p; "--threshold"; "200";
               "--key"; "bench.interp_asm_us=10" ]);
        let bad = tmpfile "bad.json" in
        write_file bad "not json at all";
        checki "unparseable input exits 124" 124
          (occo [ "bench-diff"; old_p; bad ]));
  ]

(* ------------------------------------------------------------------ *)
(* Workers: pipe-write failure and real-fork telemetry                *)
(* ------------------------------------------------------------------ *)

let worker_tests =
  [
    Alcotest.test_case "unmarshalable payload classifies as pipe-write \
                        failure, not a crash" `Quick (fun () ->
        match Worker.run (fun () -> Ok (fun x -> x + 1)) with
        | Worker.Pipe_write_failed -> ()
        | Worker.Crashed why ->
          Alcotest.failf "misclassified as generic crash: %s" why
        | _ -> Alcotest.fail "expected Pipe_write_failed");
    Alcotest.test_case "a forked worker's spans and metrics merge into the \
                        parent" `Quick (fun () ->
        with_fresh_obs (fun () ->
            Obs.Metrics.incr_counter "parent.count";
            let v =
              Worker.run ~label:"job:telemetry"
                ~attrs:[ ("class", Obs.Json.Str "test") ]
                (fun () ->
                  Obs.Metrics.incr_counter "child.count";
                  Obs.Metrics.observe "child.hist" 123.;
                  Obs.Trace.with_span "inner" (fun () -> ());
                  Ok 42)
            in
            check "job returned" true (v = Worker.Returned (Ok 42));
            (* The child reset the inherited registry, so the parent's
               counter did not double. *)
            checki "parent counter untouched by the child" 1
              (Obs.Metrics.get_counter "parent.count");
            checki "child counter merged" 1
              (Obs.Metrics.get_counter "child.count");
            let s = Option.get (Obs.Metrics.histogram_stats "child.hist") in
            checki "child histogram merged" 1 s.Obs.Metrics.count;
            match Obs.Trace.grafted () with
            | [ (pid, [ root ]) ] ->
              check "grafted under a real worker pid" true
                (pid > 0 && pid <> Unix.getpid ());
              checks "root span is the job label" "job:telemetry"
                root.Obs.Trace.name;
              check "job label carries the attrs" true
                (List.mem_assoc "class" root.Obs.Trace.attrs);
              Alcotest.(check (list string))
                "the job's own spans nest under it" [ "inner" ]
                (List.map
                   (fun s -> s.Obs.Trace.name)
                   root.Obs.Trace.children)
            | _ -> Alcotest.fail "expected one grafted worker forest"));
    Alcotest.test_case "observability off: workers ship no snapshot" `Quick
      (fun () ->
        Obs.reset_all ();
        check "obs is off" false !Obs.enabled;
        (match Worker.run (fun () -> Ok 7) with
        | Worker.Returned (Ok 7) -> ()
        | _ -> Alcotest.fail "job failed");
        check "nothing grafted" true (Obs.Trace.grafted () = []));
  ]

(* ------------------------------------------------------------------ *)
(* Supervisor gauges and breaker transition events                    *)
(* ------------------------------------------------------------------ *)

let ok_job id : int Sup.job =
  {
    Sup.job_id = id;
    job_class = "test";
    job_run = (fun ~attempt:_ -> Ok 1);
    job_degraded = None;
  }

let service_tests =
  [
    Alcotest.test_case "a run leaves queue-depth/inflight/jobs-per-s gauges"
      `Quick (fun () ->
        with_fresh_obs (fun () ->
            let outcomes =
              Sup.run
                { Sup.default_config with Sup.c_jobs = 2 }
                [ ok_job "a"; ok_job "b"; ok_job "c" ]
            in
            check "all ok" true (Sup.all_ok outcomes);
            check "queue drained" true
              (Obs.Metrics.get_gauge "harness.queue_depth" = Some 0.);
            check "no worker left inflight" true
              (Obs.Metrics.get_gauge "harness.inflight" = Some 0.);
            check "throughput gauge set and positive" true
              (match Obs.Metrics.get_gauge "harness.jobs_per_s" with
              | Some v -> v > 0.
              | None -> false)));
    Alcotest.test_case "breaker transitions land in the interaction log"
      `Quick (fun () ->
        with_fresh_obs (fun () ->
            let b = Breaker.create ~threshold:1 ~cooldown_us:10. "cls" in
            Breaker.record b ~now_us:0. ~ok:false;
            (* tripped: closed -> open *)
            check "probe admitted after cooldown" true
              (Breaker.allow b ~now_us:20.);
            (* timed: open -> half-open *)
            Breaker.record b ~now_us:21. ~ok:true;
            (* probe success: half-open -> closed *)
            let services =
              List.filter_map
                (function Obs.Interaction_log.Service s -> Some s | _ -> None)
                (Obs.Interaction_log.events ())
            in
            Alcotest.(check (list string))
              "all three transitions, in order"
              [
                "breaker cls: closed -> open";
                "breaker cls: open -> half-open";
                "breaker cls: half-open -> closed";
              ]
              services));
  ]

let suite =
  ( "snapshot",
    json_tests @ sketch_tests @ snapshot_tests @ unwind_tests
    @ bench_diff_tests @ worker_tests @ service_tests )
