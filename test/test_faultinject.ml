(** Tests for the fault-injection subsystem: mutator site enumeration
    and application, reachability filtering, detection of the must-kill
    classes by the differential and co-execution detectors, campaign
    determinism, the JSON report, the metrics counters, and the
    counterexample minimizer shared with the fuzzer. *)

module M = Faultinject.Mutate
module Campaign = Faultinject.Campaign

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* Compile one corpus program for the site-level tests. *)
let compiled name =
  let src = List.assoc name Campaign.corpus in
  match Driver.Compiler.compile_source_diag src with
  | Ok arts -> arts
  | Error f ->
    Alcotest.failf "corpus %s does not compile: %s" name
      (Support.Diagnostics.to_string f.Driver.Compiler.fail_diag)

let mutate_tests =
  [
    Alcotest.test_case "every RTL class has sites in the corpus" `Quick
      (fun () ->
        let all_arts = List.map (fun (n, _) -> compiled n) Campaign.corpus in
        List.iter
          (fun cls ->
            match M.injection_point cls with
            | `Linear -> ()
            | `Rtl ->
              let total =
                List.fold_left
                  (fun acc arts ->
                    acc
                    + List.length (M.rtl_sites cls arts.Driver.Compiler.rtl))
                  0 all_arts
              in
              check
                (Printf.sprintf "sites for %s" (M.class_name cls))
                true (total > 0))
          M.all_classes);
    Alcotest.test_case "conv-slot sites exist, incl. stack slots" `Quick
      (fun () ->
        let arts = compiled "many-args" in
        let sites =
          M.linear_sites M.Corrupt_conv_slot arts.Driver.Compiler.linear_clean
        in
        check "some sites" true (sites <> []);
        check "a stack-slot site" true
          (List.exists
             (fun s ->
               s.M.site_note = "shift stack slot by one word")
             sites));
    Alcotest.test_case "sites only in functions reachable from main" `Quick
      (fun () ->
        (* in nested-calls, [dec] is fully inlined into [tri]; mutating
           its leftover body would be vacuous *)
        let arts = compiled "nested-calls" in
        let rtl_funs =
          List.concat_map
            (fun c ->
              List.map
                (fun s -> s.M.site_fun)
                (M.rtl_sites c arts.Driver.Compiler.rtl))
            M.all_classes
        in
        let lin_funs =
          List.map
            (fun s -> s.M.site_fun)
            (M.linear_sites M.Corrupt_conv_slot
               arts.Driver.Compiler.linear_clean)
        in
        check "no RTL site in dec" true (not (List.mem "dec" rtl_funs));
        check "no Linear site in dec" true (not (List.mem "dec" lin_funs)));
    Alcotest.test_case "apply_rtl changes the program at the site" `Quick
      (fun () ->
        let arts = compiled "arith-branch" in
        let rtl = arts.Driver.Compiler.rtl in
        List.iter
          (fun cls ->
            match M.rtl_sites cls rtl with
            | [] -> ()
            | site :: _ -> (
              match M.apply_rtl cls site rtl with
              | None ->
                Alcotest.failf "%s: site did not apply" (M.class_name cls)
              | Some rtl' -> check (M.class_name cls) true (rtl' <> rtl)))
          [ M.Swap_operands; M.Perturb_const; M.Retarget_branch ]);
    Alcotest.test_case "apply on a stale site is None, not an exception"
      `Quick (fun () ->
        let arts = compiled "arith-branch" in
        let rtl = arts.Driver.Compiler.rtl in
        let ghost =
          { M.site_fun = "main"; site_loc = 999_999; site_note = "gone" }
        in
        check "rtl" true (M.apply_rtl M.Swap_operands ghost rtl = None);
        let lin = arts.Driver.Compiler.linear_clean in
        let ghost' = { ghost with M.site_loc = 999_999 } in
        check "linear" true
          (M.apply_linear M.Corrupt_conv_slot ghost' lin = None));
  ]

let campaign_tests =
  [
    Alcotest.test_case "seeded campaign kills every must-kill mutant" `Slow
      (fun () ->
        match Campaign.run ~seed:3 ~mutants:24 () with
        | Error d -> Alcotest.failf "campaign: %s" (Support.Diagnostics.to_string d)
        | Ok rp ->
          checki "tried all" 24 (List.length rp.Campaign.rp_results);
          check "must-kill classes all killed" true (Campaign.must_kill_ok rp);
          check "chaos modes diagnosed" true (Campaign.chaos_ok rp));
    Alcotest.test_case "campaign is deterministic in the seed" `Slow (fun () ->
        let survivors rp =
          List.map
            (fun r ->
              (r.Campaign.mr_program, M.class_name r.Campaign.mr_class,
               r.Campaign.mr_site.M.site_loc))
            (Campaign.survivors rp)
        in
        match (Campaign.run ~seed:11 ~mutants:18 (), Campaign.run ~seed:11 ~mutants:18 ()) with
        | Ok a, Ok b -> check "same survivors" true (survivors a = survivors b)
        | _ -> Alcotest.fail "campaign errored");
    Alcotest.test_case "JSON report parses and carries the matrix" `Slow
      (fun () ->
        match Campaign.run ~seed:5 ~mutants:12 () with
        | Error _ -> Alcotest.fail "campaign errored"
        | Ok rp -> (
          let j = Campaign.to_json rp in
          let s = Obs.Json.to_string j in
          match Obs.Json.parse_opt s with
          | None -> Alcotest.fail "report JSON does not re-parse"
          | Some j' ->
            check "must_kill_ok present" true
              (Obs.Json.member "must_kill_ok" j' <> None);
            check "matrix has every class" true
              (match Obs.Json.member "matrix" j' with
              | Some m ->
                List.for_all
                  (fun c -> Obs.Json.member (M.class_name c) m <> None)
                  M.all_classes
              | None -> false)));
    Alcotest.test_case "campaign feeds the metrics counters" `Slow (fun () ->
        Obs.reset_all ();
        Obs.with_enabled (fun () ->
            match Campaign.run ~seed:2 ~mutants:12 () with
            | Error _ -> Alcotest.fail "campaign errored"
            | Ok rp ->
              let killed =
                List.length
                  (List.filter
                     (fun r -> not r.Campaign.mr_survived)
                     rp.Campaign.rp_results)
              in
              checki "chaos.mutants" 12 (Obs.Metrics.get_counter "chaos.mutants");
              checki "chaos.killed" killed (Obs.Metrics.get_counter "chaos.killed");
              checki "chaos.survived" (12 - killed)
                (Obs.Metrics.get_counter "chaos.survived")));
  ]

(* The minimizer the fuzzer and the campaign share (satellite of the
   harness: counterexamples should come back small). *)
let minimize_tests =
  [
    Alcotest.test_case "minimize strips irrelevant lines" `Quick (fun () ->
        let src =
          "int g = 1;\n\
           int arr[8] = {1,2,3,4,5,6,7,8};\n\
           int f0(void) { int v0 = 42; g = g + 3; return v0; }\n\
           int main(void) { g = 17 * g; return g; }"
        in
        (* pretend the bug is "program multiplies" — minimization must
           keep a '*' while shedding everything else it can *)
        let still_failing s = String.contains s '*' in
        let small = Fuzz.Gen.minimize ~still_failing src in
        check "still failing" true (String.contains small '*');
        check "strictly smaller" true (String.length small < String.length src);
        check "dropped the f0 line" true
          (not
             (List.exists
                (fun l -> String.length l > 6 && String.sub l 0 6 = "int f0")
                (String.split_on_char '\n' small))));
    Alcotest.test_case "candidates are strictly smaller" `Quick (fun () ->
        let src = List.assoc "nested-calls" Campaign.corpus in
        List.iter
          (fun c ->
            check "smaller" true (String.length c < String.length src))
          (Fuzz.Gen.shrink_candidates src));
    Alcotest.test_case "minimized counterexamples still compile the bug"
      `Quick (fun () ->
        (* a differential-style predicate: failure = 'compiles and main
           returns 0' (arbitrary but checkable); candidates that do not
           parse must be discarded by the predicate, not crash *)
        let still_failing s =
          match Driver.Compiler.compile_source_diag s with
          | Ok _ -> true
          | Error _ -> false
          | exception _ -> false
        in
        let src = List.assoc "arith-branch" Campaign.corpus in
        let small = Fuzz.Gen.minimize ~still_failing src in
        check "still satisfies the predicate" true (still_failing small));
  ]

let suite = ("faultinject", mutate_tests @ campaign_tests @ minimize_tests)
