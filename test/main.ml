(** Test runner: all suites. *)

let () =
  Alcotest.run "compcerto"
    [
      Test_values.suite;
      Test_mem.suite;
      Test_mem_diff.suite;
      Test_meminj.suite;
      Test_target.suite;
      Test_smallstep.suite;
      Test_obs.suite;
      Test_snapshot.suite;
      Test_callconv.suite;
      Test_frontend.suite;
      Test_pipeline.suite;
      Test_programs.suite;
      Test_perpass.suite;
      Test_linking.suite;
      Test_open.suite;
      Test_parametricity.suite;
      Test_passes.suite;
      Test_allocdiff.suite;
      Test_mutstate.suite;
      Test_convalg.suite;
      Test_refinement.suite;
      Test_random.suite;
      Test_diagnostics.suite;
      Test_faultinject.suite;
      Test_chaos.suite;
      Test_robust.suite;
      Test_harness.suite;
      Test_service.suite;
    ]
