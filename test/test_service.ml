(** Tests for the compile service ([lib/service]): the content-addressed
    on-disk cache (atomic writes, checksum verify-on-read, quarantine of
    corrupt entries, epoch-scoped program payloads), the line-JSON wire
    protocol, the cached compile engine, and the daemon end to end —
    forked into a child process and driven over its Unix-domain socket
    through crash/hang/corruption chaos, poisoning, deadlines, overload
    shedding and graceful drain. *)

module Cache = Service.Cache
module Protocol = Service.Protocol
module Engine = Service.Engine
module Serve = Service.Serve
module Checkpoint = Harness.Checkpoint
module Json = Obs.Json

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let tmpdir name =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "occo-svc-%d-%s" (Unix.getpid ()) name)
  in
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  (try rm dir with Sys_error _ | Unix.Unix_error _ -> ());
  Unix.mkdir dir 0o755;
  at_exit (fun () -> try rm dir with Sys_error _ | Unix.Unix_error _ -> ());
  dir

let source n =
  Printf.sprintf
    "int f%d(int a, int b) { int i; int acc; acc = %d; for (i = 0; i < b; i \
     = i + 1) { acc = acc + a * i; } return acc; }\n\
     int main(void) { return f%d(%d, 5); }\n"
    n n n (n + 2)

(* ------------------------------------------------------------------ *)
(* Cache                                                              *)
(* ------------------------------------------------------------------ *)

let cache_tests =
  [
    Alcotest.test_case "put/get roundtrip verifies the checksum" `Quick
      (fun () ->
        let c = Cache.open_store (tmpdir "roundtrip") in
        let key = Cache.key_of ~source:"int main(void) { return 0; }" in
        Cache.put c ~key ~pass:"summary" ~opts:"O2" ~payload:"{\"x\":1}";
        (match Cache.get c ~key ~pass:"summary" ~opts:"O2" with
        | `Hit p -> check "payload intact" true (p = "{\"x\":1}")
        | _ -> Alcotest.fail "expected a hit");
        check_int "one entry" 1 (Cache.entry_count c));
    Alcotest.test_case "absent entries miss; options key the entry" `Quick
      (fun () ->
        let c = Cache.open_store (tmpdir "miss") in
        let key = Cache.key_of ~source:"x" in
        check "cold miss" true
          (Cache.get c ~key ~pass:"summary" ~opts:"O2" = `Miss);
        Cache.put c ~key ~pass:"summary" ~opts:"O2" ~payload:"p";
        (* same source, different options: a distinct entry *)
        check "O0 still misses" true
          (Cache.get c ~key ~pass:"summary" ~opts:"O0" = `Miss));
    Alcotest.test_case "a corrupt entry is quarantined, not served" `Quick
      (fun () ->
        let c = Cache.open_store (tmpdir "corrupt") in
        let key = Cache.key_of ~source:"y" in
        Cache.put c ~key ~pass:"summary" ~opts:"O2" ~payload:"payload";
        check "flipped a byte" true
          (Cache.corrupt_for_test c ~key ~pass:"summary" ~opts:"O2");
        (match Cache.get c ~key ~pass:"summary" ~opts:"O2" with
        | `Corrupt -> ()
        | _ -> Alcotest.fail "expected `Corrupt on first read");
        check_int "moved to quarantine" 1 (Cache.quarantined_count c);
        (* quarantined means gone from the hot path: re-derivable *)
        check "second read is a plain miss" true
          (Cache.get c ~key ~pass:"summary" ~opts:"O2" = `Miss));
    Alcotest.test_case
      "program payloads are epoch-scoped; summaries survive" `Quick
      (fun () ->
        let dir = tmpdir "epoch" in
        let a = Cache.open_store ~epoch:"session-a" dir in
        let key = Cache.key_of ~source:"z" in
        Cache.put a ~key ~pass:"rtl" ~opts:"O2" ~payload:"marshaled";
        Cache.put a ~key ~pass:"summary" ~opts:"O2" ~payload:"{}";
        (* same session: both hit *)
        check "rtl hits in-session" true
          (match Cache.get a ~key ~pass:"rtl" ~opts:"O2" with
          | `Hit _ -> true
          | _ -> false);
        (* a restarted store must not trust another session's interned
           program payloads, but portable summaries stay warm *)
        let b = Cache.open_store ~epoch:"session-b" dir in
        check "rtl is stale across sessions" true
          (Cache.get b ~key ~pass:"rtl" ~opts:"O2" = `Stale);
        check "summary survives the restart" true
          (match Cache.get b ~key ~pass:"summary" ~opts:"O2" with
          | `Hit _ -> true
          | _ -> false));
    Alcotest.test_case "open_store scrubs orphans and junk entries" `Quick
      (fun () ->
        let dir = tmpdir "scrub" in
        let c = Cache.open_store dir in
        let key = Cache.key_of ~source:"w" in
        Cache.put c ~key ~pass:"summary" ~opts:"O2" ~payload:"p";
        (* a crash mid-put leaves a tmp file; a stray write leaves junk *)
        let oc = open_out (Filename.concat dir "orphan.entry.1.tmp") in
        output_string oc "half-written";
        close_out oc;
        let oc = open_out (Filename.concat dir "junk.summary.O2.entry") in
        output_string oc "not a JSON header\n";
        close_out oc;
        let c2 = Cache.open_store dir in
        check "tmp orphan scrubbed" false
          (Sys.file_exists (Filename.concat dir "orphan.entry.1.tmp"));
        check_int "junk quarantined on the rebuild scan" 1
          (Cache.quarantined_count c2);
        check_int "the good entry survives" 1 (Cache.entry_count c2));
  ]

(* ------------------------------------------------------------------ *)
(* Protocol                                                           *)
(* ------------------------------------------------------------------ *)

let protocol_tests =
  [
    Alcotest.test_case "requests round-trip through the wire format" `Quick
      (fun () ->
        let r =
          {
            Protocol.rq_id = "r1";
            rq_op = Protocol.Compile;
            rq_source = "int main(void) { return 7; }";
            rq_optimize = false;
            rq_deadline_ms = Some 1500;
          }
        in
        let line = Json.to_string (Protocol.request_to_json r) in
        match Protocol.request_of_line line with
        | Ok r' -> check "identical" true (r' = r)
        | Error e -> Alcotest.failf "roundtrip: %s" e);
    Alcotest.test_case "sparse requests get defaults; junk is rejected"
      `Quick (fun () ->
        (match Protocol.request_of_line "{\"source\":\"int x;\"}" with
        | Ok r ->
          check "op defaults to compile" true (r.Protocol.rq_op = Protocol.Compile);
          check "optimize defaults on" true r.Protocol.rq_optimize;
          check "no deadline" true (r.Protocol.rq_deadline_ms = None)
        | Error e -> Alcotest.failf "sparse: %s" e);
        check "non-JSON rejected" true
          (Result.is_error (Protocol.request_of_line "not json at all")));
    Alcotest.test_case "replies carry status, cache tier and diagnostics"
      `Quick (fun () ->
        let ok =
          Protocol.reply ~id:"a" ~status:"ok" ~cache:"hit" ~elapsed_us:12.0 ()
        in
        check "status" true (Protocol.reply_status ok = Some "ok");
        check "cache tier" true (Protocol.reply_field ok "cache" = Some "hit");
        let failed =
          Protocol.reply ~id:"b" ~status:"failed"
            ~diag:
              (Support.Diagnostics.make ~phase:Support.Diagnostics.Service
                 ~kind:Support.Diagnostics.Deadline_exceeded "too late")
            ()
        in
        check "typed diagnostic kind" true
          (Protocol.reply_diag_kind failed = Some "deadline-exceeded"));
  ]

(* ------------------------------------------------------------------ *)
(* Engine                                                             *)
(* ------------------------------------------------------------------ *)

let engine_tests =
  [
    Alcotest.test_case "cold miss, then summary hit, then rtl re-derive"
      `Slow (fun () ->
        let c = Cache.open_store (tmpdir "engine") in
        let src = source 100 in
        (match Engine.compile_cached c ~source:src ~optimize:true () with
        | Ok r -> check "first compile is a miss" true (r.Engine.er_cache = "miss")
        | Error d ->
          Alcotest.failf "cold: %s" (Support.Diagnostics.to_string d));
        (match Engine.compile_cached c ~source:src ~optimize:true () with
        | Ok r -> check "second is a summary hit" true (r.Engine.er_cache = "hit")
        | Error d ->
          Alcotest.failf "warm: %s" (Support.Diagnostics.to_string d));
        (* corrupt the summary: the engine must quarantine it and
           re-derive from the cached RTL (backend-only recompile) *)
        let key = Cache.key_of ~source:src in
        check "corrupted" true
          (Cache.corrupt_for_test c ~key ~pass:"summary" ~opts:"O2");
        (match Engine.compile_cached c ~source:src ~optimize:true () with
        | Ok r ->
          check "re-derived from rtl" true (r.Engine.er_cache = "rtl")
        | Error d ->
          Alcotest.failf "re-derive: %s" (Support.Diagnostics.to_string d));
        check_int "corrupt summary quarantined" 1 (Cache.quarantined_count c);
        (* the re-derived summary is cached again *)
        match Engine.compile_cached c ~source:src ~optimize:true () with
        | Ok r -> check "warm again" true (r.Engine.er_cache = "hit")
        | Error d ->
          Alcotest.failf "re-warm: %s" (Support.Diagnostics.to_string d));
    Alcotest.test_case "O0 and O2 are distinct cache lines" `Slow (fun () ->
        let c = Cache.open_store (tmpdir "engine-opts") in
        let src = source 101 in
        (match Engine.compile_cached c ~source:src ~optimize:true () with
        | Ok r -> check "O2 miss" true (r.Engine.er_cache = "miss")
        | Error d -> Alcotest.failf "O2: %s" (Support.Diagnostics.to_string d));
        match Engine.compile_cached c ~source:src ~optimize:false () with
        | Ok r ->
          check "O0 misses despite the warm O2 line" true
            (r.Engine.er_cache = "miss");
          check "reply records the tier" true (not r.Engine.er_optimized)
        | Error d -> Alcotest.failf "O0: %s" (Support.Diagnostics.to_string d));
    Alcotest.test_case "a compile failure is a diagnostic, not a cache write"
      `Quick (fun () ->
        let c = Cache.open_store (tmpdir "engine-bad") in
        (match
           Engine.compile_cached c ~source:"int main(void) { return 0 }"
             ~optimize:true ()
         with
        | Ok _ -> Alcotest.fail "expected a syntax error"
        | Error _ -> ());
        check_int "nothing cached" 0 (Cache.entry_count c));
  ]

(* ------------------------------------------------------------------ *)
(* Daemon end to end                                                  *)
(* ------------------------------------------------------------------ *)

let compile_req ?(id = "t") ?(optimize = true) ?deadline_ms src =
  {
    Protocol.rq_id = id;
    rq_op = Protocol.Compile;
    rq_source = src;
    rq_optimize = optimize;
    rq_deadline_ms = deadline_ms;
  }

let op_req op = { (compile_req "") with Protocol.rq_op = op }

let must ~socket req =
  match Serve.request ~socket req with
  | Ok j -> j
  | Error e -> Alcotest.failf "request: %s" e

let status j = Option.value ~default:"?" (Protocol.reply_status j)
let cache_tier j = Option.value ~default:"?" (Protocol.reply_field j "cache")
let diag_kind j = Option.value ~default:"?" (Protocol.reply_diag_kind j)

let wait_exit0 name pid =
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED n -> Alcotest.failf "%s: daemon exited %d" name n
  | _, Unix.WSIGNALED s -> Alcotest.failf "%s: daemon killed by signal %d" name s
  | _, Unix.WSTOPPED _ -> Alcotest.failf "%s: daemon stopped" name

(* Fork the daemon into a child process (as `occo serve` would run it);
   the tests drive it through its socket with [Serve.request] and watch
   the exit status through SIGTERM / shutdown. *)
let spawn_daemon cfg ~dir =
  let socket = Filename.concat dir "d.sock" in
  let cfg =
    { cfg with Serve.s_socket = socket;
      s_cache_dir = Filename.concat dir "cache" }
  in
  let pid = Unix.fork () in
  if pid = 0 then begin
    (try ignore (Serve.serve cfg) with _ -> Unix._exit 2);
    Unix._exit 0
  end
  else (pid, socket)

let serve_tests =
  [
    Alcotest.test_case
      "compile, warm hit, SIGTERM drain, compacted journal" `Slow (fun () ->
        let dir = tmpdir "e2e-basic" in
        let journal = Filename.concat dir "journal.jsonl" in
        let cfg =
          { Serve.default_config with Serve.s_journal = Some journal }
        in
        let pid, socket = spawn_daemon cfg ~dir in
        Fun.protect
          ~finally:(fun () ->
            try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
          (fun () ->
            let src = source 1 in
            let r1 = must ~socket (compile_req src) in
            check "first compile ok" true (status r1 = "ok");
            check "cold path" true (cache_tier r1 = "miss");
            let r2 = must ~socket (compile_req src) in
            check "second compile ok" true (status r2 = "ok");
            check "warm summary hit" true (cache_tier r2 = "hit");
            check "ping answers" true
              (status (must ~socket (op_req Protocol.Ping)) = "pong");
            (* graceful drain: finish in flight, flush, exit 0 *)
            Unix.kill pid Sys.sigterm;
            wait_exit0 "basic" pid;
            check "socket unlinked on exit" false (Sys.file_exists socket);
            (* the journal was compacted on clean shutdown: one
               last-status line per request id, every one completed *)
            let entries = Checkpoint.load journal in
            check "journal non-empty" true (entries <> []);
            let ids = List.map (fun e -> e.Checkpoint.e_id) entries in
            check "one line per request after compaction" true
              (List.sort_uniq compare ids = List.sort compare ids);
            check "every entry completed" true
              (List.for_all
                 (fun e -> e.Checkpoint.e_status = "ok")
                 entries)));
    Alcotest.test_case "crash+hang chaos: the request still completes" `Slow
      (fun () ->
        let cfg =
          {
            Serve.default_config with
            Serve.s_timeout_us = Some 0.5e6;
            s_retries = 3;
            s_chaos =
              { Serve.no_chaos with Serve.ch_crash = true; ch_hang = true };
          }
        in
        let dir = tmpdir "e2e-chaos" in
        let pid, socket = spawn_daemon cfg ~dir in
        Fun.protect
          ~finally:(fun () ->
            try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
          (fun () ->
            (* attempt 0 SIGSEGVs, attempt 1 hangs until the watchdog
               kills it, attempt 2 compiles: the client just sees ok *)
            let r = must ~socket (compile_req (source 2)) in
            check "survived crash then hang" true (status r = "ok");
            Unix.kill pid Sys.sigterm;
            wait_exit0 "chaos" pid));
    Alcotest.test_case
      "corrupt cache entry: quarantined and re-derived, never served" `Slow
      (fun () ->
        let cfg =
          {
            Serve.default_config with
            Serve.s_chaos = { Serve.no_chaos with Serve.ch_corrupt = true };
          }
        in
        let dir = tmpdir "e2e-corrupt" in
        let pid, socket = spawn_daemon cfg ~dir in
        Fun.protect
          ~finally:(fun () ->
            try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
          (fun () ->
            let src = source 3 in
            let r1 = must ~socket (compile_req src) in
            check "first compile ok" true (status r1 = "ok");
            (* chaos corrupted the summary it just wrote: the repeat
               must detect it and re-derive instead of serving junk *)
            let r2 = must ~socket (compile_req src) in
            check "re-derived ok" true (status r2 = "ok");
            check "not served from the corrupt summary" true
              (cache_tier r2 <> "hit");
            Unix.kill pid Sys.sigterm;
            wait_exit0 "corrupt" pid;
            let c =
              Cache.open_store ~epoch:"inspect"
                (Filename.concat dir "cache")
            in
            check "at least one quarantined entry" true
              (Cache.quarantined_count c >= 1)));
    Alcotest.test_case "poison: crash-looping request quarantined; \
                        survives --resume" `Slow (fun () ->
        let dir = tmpdir "e2e-poison" in
        let journal = Filename.concat dir "journal.jsonl" in
        let chaos_cfg =
          {
            Serve.default_config with
            Serve.s_journal = Some journal;
            s_retries = 4;
            s_poison_threshold = 2;
            s_chaos =
              { Serve.no_chaos with Serve.ch_crash = true;
                ch_crash_forever = true };
          }
        in
        let pid, socket = spawn_daemon chaos_cfg ~dir in
        let src = source 4 in
        Fun.protect
          ~finally:(fun () ->
            try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
          (fun () ->
            let r = must ~socket (compile_req src) in
            check "poisoned, not crash-looped" true (status r = "poisoned");
            check "typed diagnostic" true (diag_kind r = "poisoned");
            (* repeats are rejected instantly, no worker spawned *)
            let r2 = must ~socket (compile_req src) in
            check "instant reject" true (status r2 = "poisoned");
            Unix.kill pid Sys.sigterm;
            wait_exit0 "poison" pid);
        (* restart healthy (no chaos) with --resume: the poison set is
           reloaded from the journal, so the request stays quarantined
           rather than crash-looping a fresh daemon *)
        let resumed =
          {
            Serve.default_config with
            Serve.s_journal = Some journal;
            s_resume = true;
          }
        in
        let pid, socket = spawn_daemon resumed ~dir in
        Fun.protect
          ~finally:(fun () ->
            try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
          (fun () ->
            let r = must ~socket (compile_req src) in
            check "still poisoned after restart" true (status r = "poisoned");
            (* but the daemon itself is healthy for other work *)
            let r2 = must ~socket (compile_req (source 5)) in
            check "fresh work compiles" true (status r2 = "ok");
            Unix.kill pid Sys.sigterm;
            wait_exit0 "resume" pid));
    Alcotest.test_case "deadline exceeded end to end" `Slow (fun () ->
        let cfg =
          {
            Serve.default_config with
            Serve.s_chaos = { Serve.no_chaos with Serve.ch_hang = true };
          }
        in
        let dir = tmpdir "e2e-deadline" in
        let pid, socket = spawn_daemon cfg ~dir in
        Fun.protect
          ~finally:(fun () ->
            try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
          (fun () ->
            let r =
              must ~socket (compile_req ~deadline_ms:300 (source 6))
            in
            check "failed, not wedged" true (status r = "failed");
            check "typed deadline diagnostic" true
              (diag_kind r = "deadline-exceeded");
            Unix.kill pid Sys.sigterm;
            wait_exit0 "deadline" pid));
    Alcotest.test_case "overload: beyond the queue cap, requests shed"
      `Slow (fun () ->
        let cfg = { Serve.default_config with Serve.s_queue_cap = 0 } in
        let dir = tmpdir "e2e-shed" in
        let pid, socket = spawn_daemon cfg ~dir in
        Fun.protect
          ~finally:(fun () ->
            try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
          (fun () ->
            let r = must ~socket (compile_req (source 7)) in
            check "shed" true (status r = "shed");
            check "typed overload diagnostic" true
              (diag_kind r = "overloaded");
            (* shedding is load protection, not a crash *)
            check "daemon still answers" true
              (status (must ~socket (op_req Protocol.Ping)) = "pong");
            Unix.kill pid Sys.sigterm;
            wait_exit0 "shed" pid));
    Alcotest.test_case "shutdown op drains like SIGTERM" `Slow (fun () ->
        let dir = tmpdir "e2e-shutdown" in
        let pid, socket = spawn_daemon Serve.default_config ~dir in
        Fun.protect
          ~finally:(fun () ->
            try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
          (fun () ->
            let r = must ~socket (op_req Protocol.Shutdown) in
            check "acknowledged" true (status r = "draining");
            wait_exit0 "shutdown" pid));
  ]

let suite =
  ( "service",
    cache_tests @ protocol_tests @ engine_tests @ serve_tests )
