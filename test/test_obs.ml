(** Tests for the observability layer (ISSUE 1): span nesting and
    ordering, Chrome-trace JSON well-formedness (parsed back with the
    in-tree parser), metrics arithmetic, and the
    [Obs_lts.instrument]-preserves-outcome property. *)

open Core

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* Every test starts from a clean slate and leaves observability off
   (the recorded spans/metrics stay readable for the assertions that
   follow the thunk). *)
let with_fresh_obs f =
  Obs.reset_all ();
  Obs.with_enabled f

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let span_tests =
  [
    Alcotest.test_case "spans nest and keep order" `Quick (fun () ->
        with_fresh_obs (fun () ->
            Obs.Trace.with_span "root" (fun () ->
                Obs.Trace.with_span "a" (fun () -> ());
                Obs.Trace.with_span "b" (fun () ->
                    Obs.Trace.with_span "b1" (fun () -> ())));
            Obs.Trace.with_span "root2" (fun () -> ()));
        let roots = Obs.Trace.roots () in
        checki "two top-level spans" 2 (List.length roots);
        let root = List.nth roots 0 in
        checks "first root" "root" root.Obs.Trace.name;
        checks "second root" "root2" (List.nth roots 1).Obs.Trace.name;
        let kids = List.map (fun s -> s.Obs.Trace.name) root.Obs.Trace.children in
        Alcotest.(check (list string)) "children in order" [ "a"; "b" ] kids;
        let b = List.nth root.Obs.Trace.children 1 in
        checks "grandchild" "b1" (List.hd b.Obs.Trace.children).Obs.Trace.name);
    Alcotest.test_case "sequence numbers are monotone" `Quick (fun () ->
        with_fresh_obs (fun () ->
            Obs.Trace.with_span "x" (fun () ->
                Obs.Trace.with_span "y" (fun () -> ())));
        match Obs.Trace.roots () with
        | [ x ] ->
          let y = List.hd x.Obs.Trace.children in
          check "parent opened first" true (x.Obs.Trace.seq < y.Obs.Trace.seq)
        | _ -> Alcotest.fail "expected one root");
    Alcotest.test_case "span closed on exception" `Quick (fun () ->
        with_fresh_obs (fun () ->
            (try Obs.Trace.with_span "boom" (fun () -> failwith "x")
             with Failure _ -> ());
            checki "span recorded despite the exception" 1
              (List.length (Obs.Trace.roots ()))));
    Alcotest.test_case "attributes land on the open span" `Quick (fun () ->
        with_fresh_obs (fun () ->
            Obs.Trace.with_span "s" (fun () ->
                Obs.Trace.add_attr "k" (Obs.Json.Str "v")));
        match Obs.Trace.roots () with
        | [ s ] ->
          check "attr present" true
            (List.mem_assoc "k" s.Obs.Trace.attrs)
        | _ -> Alcotest.fail "expected one root");
    Alcotest.test_case "disabled tracing records nothing" `Quick (fun () ->
        Obs.reset_all ();
        Obs.Trace.with_span "invisible" (fun () -> ());
        checki "no spans" 0 (List.length (Obs.Trace.roots ())));
  ]

(* ------------------------------------------------------------------ *)
(* Chrome trace JSON, parsed back                                      *)
(* ------------------------------------------------------------------ *)

let chrome_tests =
  [
    Alcotest.test_case "export parses back and is well-formed" `Quick (fun () ->
        with_fresh_obs (fun () ->
            Obs.Trace.with_span "outer" (fun () ->
                Obs.Trace.add_attr "size" (Obs.Json.num_of_int 7);
                Obs.Trace.with_span "inner" (fun () -> ())));
        let j = Obs.Json.parse (Obs.Json.to_string (Obs.Trace.to_chrome_json ())) in
        let events =
          Option.get (Obs.Json.to_list (Option.get (Obs.Json.member "traceEvents" j)))
        in
        checki "one event per span" 2 (List.length events);
        List.iter
          (fun ev ->
            check "ph is X" true
              (Obs.Json.member "ph" ev = Some (Obs.Json.Str "X"));
            List.iter
              (fun field ->
                check (field ^ " present") true (Obs.Json.member field ev <> None))
              [ "name"; "ts"; "dur"; "pid"; "tid"; "args" ];
            let dur = Option.get (Obs.Json.to_num (Option.get (Obs.Json.member "dur" ev))) in
            check "dur non-negative" true (dur >= 0.))
          events;
        let names =
          List.filter_map
            (fun ev -> Obs.Json.to_str (Option.get (Obs.Json.member "name" ev)))
            events
        in
        Alcotest.(check (list string)) "event order" [ "outer"; "inner" ] names);
    Alcotest.test_case "json round-trips assorted values" `Quick (fun () ->
        let j =
          Obs.Json.Obj
            [
              ("s", Obs.Json.Str "a \"quoted\"\n\ttab\\slash");
              ("n", Obs.Json.Num 42.);
              ("x", Obs.Json.Num 1.5);
              ("b", Obs.Json.Bool true);
              ("z", Obs.Json.Null);
              ("l", Obs.Json.List [ Obs.Json.num_of_int 1; Obs.Json.Obj [] ]);
            ]
        in
        check "round trip" true (Obs.Json.parse (Obs.Json.to_string j) = j));
    Alcotest.test_case "parser rejects garbage" `Quick (fun () ->
        check "trailing" true (Obs.Json.parse_opt "{} junk" = None);
        check "unterminated" true (Obs.Json.parse_opt "{\"a\": " = None);
        check "bare word" true (Obs.Json.parse_opt "flase" = None));
  ]

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let metrics_tests =
  [
    Alcotest.test_case "counter arithmetic" `Quick (fun () ->
        with_fresh_obs (fun () ->
            Obs.Metrics.incr_counter "c";
            Obs.Metrics.incr_counter "c" ~by:4;
            checki "1+4" 5 (Obs.Metrics.get_counter "c");
            checki "missing counter reads 0" 0 (Obs.Metrics.get_counter "nope")));
    Alcotest.test_case "gauge overwrites" `Quick (fun () ->
        with_fresh_obs (fun () ->
            Obs.Metrics.set_gauge "g" 1.5;
            Obs.Metrics.set_gauge "g" 2.5;
            check "last write wins" true (Obs.Metrics.get_gauge "g" = Some 2.5)));
    Alcotest.test_case "histogram statistics" `Quick (fun () ->
        with_fresh_obs (fun () ->
            List.iter (Obs.Metrics.observe "h") [ 10.; 30.; 20. ];
            match Obs.Metrics.histogram_stats "h" with
            | None -> Alcotest.fail "histogram missing"
            | Some s ->
              checki "count" 3 s.Obs.Metrics.count;
              check "sum" true (s.Obs.Metrics.sum = 60.);
              check "min" true (s.Obs.Metrics.min = 10.);
              check "max" true (s.Obs.Metrics.max = 30.);
              check "mean" true (s.Obs.Metrics.mean = 20.)));
    Alcotest.test_case "time feeds the histogram" `Quick (fun () ->
        with_fresh_obs (fun () ->
            Obs.Metrics.time "t" (fun () -> ());
            match Obs.Metrics.histogram_stats "t" with
            | Some s -> checki "one sample" 1 s.Obs.Metrics.count
            | None -> Alcotest.fail "no sample recorded"));
    Alcotest.test_case "recording is off by default" `Quick (fun () ->
        Obs.reset_all ();
        Obs.Metrics.incr_counter "off";
        Obs.Metrics.observe "off" 1.;
        checki "counter untouched" 0 (Obs.Metrics.get_counter "off");
        check "histogram untouched" true (Obs.Metrics.histogram_stats "off" = None));
    Alcotest.test_case "quantiles around zero" `Quick (fun () ->
        with_fresh_obs (fun () ->
            (* All-zero histogram: the normal shape of an alloc_words
               sketch for a pass that allocates nothing. Every
               quantile must answer 0, not the old bucket-0
               representative of 1.0. *)
            List.iter (Obs.Metrics.observe "zeros") [ 0.; 0.; 0.; 0. ];
            (match Obs.Metrics.histogram_stats "zeros" with
            | None -> Alcotest.fail "zeros histogram missing"
            | Some s ->
              check "p50 of zeros is 0" true (s.Obs.Metrics.p50 = 0.);
              check "p99 of zeros is 0" true (s.Obs.Metrics.p99 = 0.);
              check "min exact" true (s.Obs.Metrics.min = 0.);
              check "max exact" true (s.Obs.Metrics.max = 0.));
            (* Mostly-zero with one large outlier: the median sits in
               the non-positive bucket and must not be dragged to 1. *)
            List.iter (Obs.Metrics.observe "mixed") [ 0.; 0.; 0.; 1000. ];
            (match Obs.Metrics.histogram_stats "mixed" with
            | None -> Alcotest.fail "mixed histogram missing"
            | Some s ->
              check "p50 of mostly-zeros is 0" true (s.Obs.Metrics.p50 = 0.);
              check "max exact" true (s.Obs.Metrics.max = 1000.));
            (* Negative observations: quantiles stay clamped inside
               the exact [min, max], hence non-positive. *)
            List.iter (Obs.Metrics.observe "neg") [ -5.; -2. ];
            (match Obs.Metrics.histogram_stats "neg" with
            | None -> Alcotest.fail "neg histogram missing"
            | Some s ->
              check "min exact" true (s.Obs.Metrics.min = -5.);
              check "max exact" true (s.Obs.Metrics.max = -2.);
              check "p50 within [min, max]" true
                (s.Obs.Metrics.p50 >= -5. && s.Obs.Metrics.p50 <= -2.);
              check "p99 within [min, max]" true
                (s.Obs.Metrics.p99 >= -5. && s.Obs.Metrics.p99 <= -2.));
            (* Small positive values live in the (0, 1] bucket and are
               clamped to the exact extremes, never rounded to 1. *)
            Obs.Metrics.observe "small" 0.3;
            match Obs.Metrics.quantile "small" 0.5 with
            | Some q -> check "p50 of {0.3} is 0.3" true (q = 0.3)
            | None -> Alcotest.fail "small histogram missing"));
    Alcotest.test_case "unit-honest dump keys for non-time histograms" `Quick
      (fun () ->
        with_fresh_obs (fun () ->
            Obs.Metrics.observe "pass.X" 120.;
            Obs.Metrics.observe "pass.X.alloc_words" 512.;
            let j = Obs.Metrics.dump_json () in
            let hists = Option.get (Obs.Json.member "histograms" j) in
            let time_h = Option.get (Obs.Json.member "pass.X" hists) in
            let words_h =
              Option.get (Obs.Json.member "pass.X.alloc_words" hists)
            in
            check "duration keeps _us keys" true
              (Obs.Json.member "mean_us" time_h <> None);
            check "duration has no bare mean" true
              (Obs.Json.member "mean" time_h = None);
            check "alloc_words drops the _us suffix" true
              (Obs.Json.member "mean" words_h <> None
              && Obs.Json.member "sum" words_h <> None
              && Obs.Json.member "p99" words_h <> None);
            check "alloc_words has no _us keys" true
              (Obs.Json.member "mean_us" words_h = None
              && Obs.Json.member "sum_us" words_h = None)));
    Alcotest.test_case "pipeline alloc_words histograms are non-negative" `Quick
      (fun () ->
        (* Regression test for the Gc accounting bug the bench exposed:
           mixing [Gc.minor_words] with a separately-sampled
           [Gc.counters] let promoted words exceed the apparent major
           allocation, dumping negative alloc_words into the bench
           snapshot. The pass instrumentation now derives every figure
           from one [Gc.counters] call and clamps at 0. *)
        with_fresh_obs (fun () ->
            let src =
              "int f(int x) { return x * x + 1; }\n\
               int main(void) { int s = 0; int i; for (i = 0; i < 20; i = i + \
               1) s = s + f(i); return s; }"
            in
            let p = Cfrontend.Cparser.parse_program src in
            ignore (Support.Errors.get (Driver.Compiler.compile p));
            let words_hists =
              List.filter
                (fun n -> Obs.Metrics.unit_suffix n = "")
                (Obs.Metrics.histogram_names ())
            in
            check "compile recorded alloc_words histograms" true
              (words_hists <> []);
            List.iter
              (fun n ->
                match Obs.Metrics.histogram_stats n with
                | None -> Alcotest.fail (n ^ " vanished")
                | Some s ->
                  check (n ^ " min is non-negative") true
                    (s.Obs.Metrics.min >= 0.);
                  check (n ^ " p50 is non-negative") true
                    (s.Obs.Metrics.p50 >= 0.))
              words_hists));
    Alcotest.test_case "dump_json parses and carries the values" `Quick (fun () ->
        with_fresh_obs (fun () ->
            Obs.Metrics.incr_counter "k" ~by:3;
            Obs.Metrics.observe "d" 5.;
            let j = Obs.Json.parse (Obs.Json.to_string (Obs.Metrics.dump_json ())) in
            let counters = Option.get (Obs.Json.member "counters" j) in
            check "counter exported" true
              (Obs.Json.member "k" counters = Some (Obs.Json.Num 3.));
            let hists = Option.get (Obs.Json.member "histograms" j) in
            let d = Option.get (Obs.Json.member "d" hists) in
            check "histogram count exported" true
              (Obs.Json.member "count" d = Some (Obs.Json.Num 1.))));
  ]

(* ------------------------------------------------------------------ *)
(* Obs_lts.instrument preserves outcomes                               *)
(* ------------------------------------------------------------------ *)

(* The toy component of test_smallstep: [double]/[quad] over a
   [(name, int)] question interface. *)
type toy_state = Start of (string * int) | Done of int

let toy : (toy_state, string * int, int, string * int, int) Smallstep.lts =
  {
    Smallstep.name = "toy";
    dom = (fun (f, _) -> f = "double" || f = "quad" || f = "loop");
    init = (fun q -> [ Start q ]);
    step =
      (fun s ->
        match s with
        | Start ("double", n) -> [ (Events.e0, Done (2 * n)) ]
        | Start ("loop", n) -> [ (Events.e0, Start ("loop", n)) ]
        | _ -> []);
    at_external = (fun s -> match s with Start ("quad", n) -> Some ("double", n) | _ -> None);
    after_external =
      (fun s ans -> match s with Start ("quad", _) -> [ Done (2 * ans) ] | _ -> []);
    final = (fun s -> match s with Done r -> Some r | _ -> None);
  }

let toy_oracle (f, n) = if f = "double" then Some (2 * n) else None

let toy_questions =
  [ ("double", 21); ("quad", 5); ("loop", 0); ("inc", 1); ("double", -3) ]

let instrument_tests =
  [
    Alcotest.test_case "instrument preserves toy outcomes" `Quick (fun () ->
        List.iter
          (fun q ->
            let bare = Smallstep.run ~fuel:100 toy ~oracle:toy_oracle q in
            let obs =
              with_fresh_obs (fun () ->
                  Smallstep.run ~fuel:100 (Obs_lts.instrument toy)
                    ~oracle:toy_oracle q)
            in
            check "same outcome" true (bare = obs))
          toy_questions);
    Alcotest.test_case "interaction log records the run shape" `Quick (fun () ->
        let evs =
          with_fresh_obs (fun () ->
              ignore
                (Obs_lts.run ~fuel:100 toy ~oracle:toy_oracle
                   ~pp_qi:(fun (f, n) -> Printf.sprintf "%s(%d)" f n)
                   ~pp_ri:string_of_int ("quad", 5));
              Obs.Interaction_log.events ())
        in
        let open Obs.Interaction_log in
        check "question logged" true (List.mem (Question "quad(5)") evs);
        check "call logged" true
          (List.exists (function Call _ -> true | _ -> false) evs);
        check "reply logged" true
          (List.exists (function Reply _ -> true | _ -> false) evs);
        check "final logged" true (List.mem (Final "20") evs);
        check "fuel accounted" true
          (List.exists (function Fuel_consumed _ -> true | _ -> false) evs));
    Alcotest.test_case "out-of-fuel is observed" `Quick (fun () ->
        let evs =
          with_fresh_obs (fun () ->
              ignore (Obs_lts.run ~fuel:10 toy ~oracle:toy_oracle ("loop", 0));
              Obs.Interaction_log.events ())
        in
        check "out of fuel logged" true (List.mem Obs.Interaction_log.Out_of_fuel evs));
    Alcotest.test_case "instrument preserves pipeline outcomes" `Quick (fun () ->
        let src =
          "int sq(int x) { return x * x; }\n\
           int main(void) { int s = 0; int i; for (i = 0; i < 6; i = i + 1) s \
           = s + sq(i); return s; }"
        in
        let p = Cfrontend.Cparser.parse_program src in
        let symbols = Iface.Ast.prog_defs_names p in
        let arts = Support.Errors.get (Driver.Compiler.compile p) in
        let q =
          Option.get (Driver.Runners.main_query ~symbols ~defs:p ())
        in
        let render o = Format.asprintf "%a" Driver.Runners.pp_c_outcome o in
        let bare_c =
          render
            (Driver.Runners.run_c_level
               (Cfrontend.Clight.semantics ~symbols p)
               ~fuel:1_000_000 q)
        in
        let bare_a =
          Result.map render
            (Driver.Runners.run_a_level
               (Backend.Asm.semantics ~symbols arts.Driver.Compiler.asm)
               ~fuel:1_000_000 q)
        in
        let obs_c, obs_a =
          with_fresh_obs (fun () ->
              ( render
                  (Driver.Runners.run_c_level
                     (Cfrontend.Clight.semantics ~symbols p)
                     ~fuel:1_000_000 q),
                Result.map render
                  (Driver.Runners.run_a_level
                     (Backend.Asm.semantics ~symbols arts.Driver.Compiler.asm)
                     ~fuel:1_000_000 q) ))
        in
        checks "clight outcome unchanged" bare_c obs_c;
        check "asm outcome unchanged" true (bare_a = obs_a));
    Alcotest.test_case "coexec records check counters" `Quick (fun () ->
        with_fresh_obs (fun () ->
            let cc = Simconv.cc_id ~name:"idtest" () in
            let v =
              Coexec.check ~fuel:100 ~l1:toy ~l2:toy ~cc_in:cc ~cc_out:cc
                ~oracle:toy_oracle ("quad", 5)
            in
            check "co-execution passes" true (Coexec.is_pass v);
            checki "query counted" 1 (Obs.Metrics.get_counter "coexec.queries");
            check "checks counted" true
              (Obs.Metrics.get_counter "coexec.checks.idtest.passed" > 0)));
  ]

let suite =
  ( "obs",
    span_tests @ chrome_tests @ metrics_tests @ instrument_tests )
