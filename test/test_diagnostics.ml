(** Tests for the structured diagnostics layer ([Support.Diagnostics])
    and the result-typed driver ([Driver.Compiler.compile_diag]): the
    taxonomy, exception capture, parse errors as diagnostics, per-pass
    budgets with graceful degradation (partial artifacts alongside the
    diagnostic), and the string-level [compile] facade. *)

open Support
module Diag = Support.Diagnostics

let check = Alcotest.(check bool)
let checks = Alcotest.(check string)

(* substring search without the Str library *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let taxonomy_tests =
  [
    Alcotest.test_case "make carries phase, kind, pass, context" `Quick
      (fun () ->
        let d =
          Diag.make ~phase:Diag.Backend ~kind:Diag.Pass_failure ~pass:"CSE"
            ~context:[ ("node", "17") ]
            "bad %s" "thing"
        in
        checks "message" "bad thing" d.Diag.message;
        check "phase" true (d.Diag.phase = Diag.Backend);
        check "kind" true (d.Diag.kind = Diag.Pass_failure);
        check "pass" true (d.Diag.pass = Some "CSE");
        check "context" true (d.Diag.context = [ ("node", "17") ]));
    Alcotest.test_case "to_string names phase, kind and pass" `Quick
      (fun () ->
        let d =
          Diag.make ~phase:Diag.Middle ~kind:Diag.Validation_failure
            ~pass:"AllocCheck" "mismatch"
        in
        let s = Diag.to_string d in
        List.iter
          (fun needle ->
            check (Printf.sprintf "%S mentions %S" s needle) true
              (contains s needle))
          [ "middle"; "validation-failure"; "AllocCheck"; "mismatch" ]);
    Alcotest.test_case "of_exn is an internal error with the exn text" `Quick
      (fun () ->
        let d =
          Diag.of_exn ~pass:"Linearize" ~phase:Diag.Backend
            (Invalid_argument "index out of bounds")
        in
        check "kind" true (d.Diag.kind = Diag.Internal_error);
        check "pass" true (d.Diag.pass = Some "Linearize");
        check "mentions exn" true
          (contains (Diag.to_string d) "index out of bounds"));
    Alcotest.test_case "to_errors / of_errors round-trip" `Quick (fun () ->
        let d =
          Diag.error ~phase:Diag.Frontend ~kind:Diag.Pass_failure ~pass:"Cshmgen"
            "no translation"
        in
        match Diag.to_errors d with
        | Ok _ -> Alcotest.fail "expected an error"
        | Error msg -> (
          match
            Diag.of_errors ~pass:"Cshmgen" ~phase:Diag.Frontend
              ~kind:Diag.Pass_failure (Error msg : unit Errors.t)
          with
          | Error d' ->
            check "kind preserved" true (d'.Diag.kind = Diag.Pass_failure)
          | Ok _ -> Alcotest.fail "expected an error back"));
    Alcotest.test_case "let* threads errors" `Quick (fun () ->
        let open Diag in
        let r : int Diag.r =
          let* x = Ok 1 in
          let* _ =
            (Diag.error ~phase:Diag.Running ~kind:Diag.Oracle_refusal "nope"
              : unit Diag.r)
          in
          Ok (x + 1)
        in
        match r with
        | Error d -> check "kind" true (d.Diag.kind = Diag.Oracle_refusal)
        | Ok _ -> Alcotest.fail "expected short-circuit");
  ]

let good_src = "int main(void) { return 40 + 2; }"

let driver_tests =
  [
    Alcotest.test_case "compile_source_diag succeeds on good input" `Quick
      (fun () ->
        match Driver.Compiler.compile_source_diag good_src with
        | Ok _ -> ()
        | Error f ->
          Alcotest.failf "unexpected: %s" (Diag.to_string f.Driver.Compiler.fail_diag));
    Alcotest.test_case "syntax error is a structured diagnostic" `Quick
      (fun () ->
        match Driver.Compiler.compile_source_diag "int main(void) { return 0 }" with
        | Ok _ -> Alcotest.fail "expected a parse failure"
        | Error f ->
          let d = f.Driver.Compiler.fail_diag in
          check "phase" true (d.Diag.phase = Diag.Parsing);
          check "kind" true (d.Diag.kind = Diag.Syntax_error));
    Alcotest.test_case "lexical error is a structured diagnostic" `Quick
      (fun () ->
        match Driver.Compiler.compile_source_diag "int main(void) { return `; }" with
        | Ok _ -> Alcotest.fail "expected a lex failure"
        | Error f ->
          check "kind" true
            (f.Driver.Compiler.fail_diag.Diag.kind = Diag.Lexical_error));
    Alcotest.test_case "zero budget degrades gracefully with partials" `Quick
      (fun () ->
        (* A budget no pass can meet: the first pass completes (its
           artifact is saved), then the budget check fires. *)
        match Driver.Compiler.compile_source_diag ~budget_us:0.0 good_src with
        | Ok _ -> Alcotest.fail "expected budget exhaustion"
        | Error f ->
          let d = f.Driver.Compiler.fail_diag in
          check "kind" true (d.Diag.kind = Diag.Budget_exceeded);
          check "has elapsed context" true
            (List.mem_assoc "elapsed_us" d.Diag.context);
          (* graceful degradation: the artifacts completed before the
             budget fired are retained *)
          check "partial progress recorded" true
            (Driver.Compiler.partial_progress f.Driver.Compiler.fail_partial
            <> "source"));
    Alcotest.test_case "generous budget compiles fully" `Quick (fun () ->
        match
          Driver.Compiler.compile_source_diag ~budget_us:10_000_000.0 good_src
        with
        | Ok _ -> ()
        | Error f ->
          Alcotest.failf "unexpected: %s" (Diag.to_string f.Driver.Compiler.fail_diag));
    Alcotest.test_case "string facade agrees with the diag driver" `Quick
      (fun () ->
        let p = Cfrontend.Cparser.parse_program good_src in
        match (Driver.Compiler.compile p, Driver.Compiler.compile_diag p) with
        | Ok _, Ok _ -> ()
        | Error e, Error f ->
          checks "same text" e (Diag.to_string f.Driver.Compiler.fail_diag)
        | _ -> Alcotest.fail "facade disagrees with compile_diag");
    Alcotest.test_case "backend_from_rtl rejects garbage gracefully" `Quick
      (fun () ->
        (* an RTL function whose entry node is missing: downstream passes
           must fail with an error, not raise *)
        let f =
          {
            Middle.Rtl.fn_sig =
              { Memory.Mtypes.sig_args = []; sig_res = Some Memory.Mtypes.Tint };
            fn_params = [];
            fn_stacksize = 0;
            fn_code = Middle.Rtl.Regmap.empty;
            fn_entrypoint = 1;
          }
        in
        let p =
          {
            Iface.Ast.prog_defs =
              [ (Ident.intern "main", Iface.Ast.Gfun (Iface.Ast.Internal f)) ];
            prog_main = Ident.intern "main";
          }
        in
        match Driver.Compiler.backend_from_rtl p with
        | Ok _ -> () (* degenerate but acceptable: empty code survives *)
        | Error _ -> () (* rejected with a message is equally fine *));
  ]

let suite = ("diagnostics", taxonomy_tests @ driver_tests)
