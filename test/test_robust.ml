(** Tests for the compromised-component campaign: partner synthesis
    (back-translation faithfulness), the boundary property monitors,
    the survival matrix, and the [Hcomp] observation/overlap hooks the
    campaign rides on. *)

open Support
open Memory.Values
module Li = Iface.Li
module Hcomp = Core.Hcomp
module Partner = Robust.Partner
module Property = Robust.Property
module Campaign = Robust.Campaign
module Mtypes = Memory.Mtypes
module Mem = Memory.Mem

let check = Alcotest.(check bool)
let fuel = Campaign.default_fuel

let compiled_corpus =
  lazy
    (match Campaign.compile_corpus ~fuel () with
    | Ok cs -> cs
    | Error d -> Alcotest.failf "corpus: %s" (Diagnostics.to_string d))

let name_tests =
  [
    Alcotest.test_case "partner mode names round-trip" `Quick (fun () ->
        List.iter
          (fun m ->
            check (Partner.mode_name m) true
              (Partner.mode_of_name (Partner.mode_name m) = Some m))
          Partner.all_modes;
        check "unknown" true (Partner.mode_of_name "frobnicate" = None);
        check "rogue excludes control" true
          (not (List.mem Partner.Replay_faithful Partner.rogue_modes)));
  ]

let corpus_tests =
  [
    Alcotest.test_case "corpus compiles and records partner traces" `Quick
      (fun () ->
        let cs = Lazy.force compiled_corpus in
        check "two programs" true (List.length cs = 2);
        List.iter
          (fun c ->
            check
              (c.Campaign.cc_name ^ " has enough activations")
              true
              (List.length c.Campaign.cc_trace >= 4);
            match c.Campaign.cc_ref with
            | Core.Smallstep.Final _ -> ()
            | o ->
              Alcotest.failf "%s reference: %a" c.Campaign.cc_name
                Driver.Runners.pp_c_outcome o)
          cs);
  ]

(* The per-mode expectations, exercised through full trials. Two whole
   mode cycles over both corpus programs, so every (mode, program) cell
   is hit at least once. *)
let campaign_tests =
  [
    Alcotest.test_case "faithful replay is indistinguishable" `Quick (fun () ->
        let compiled = Lazy.force compiled_corpus in
        List.iteri
          (fun k _ ->
            let n_modes = List.length Partner.all_modes in
            (* trial indices congruent to 0 mod n_modes are the control *)
            let t =
              Campaign.try_partner ~compiled ~fuel ~seed:7 (k * n_modes)
            in
            check "undetected" true (t.Campaign.t_verdict = Campaign.Undetected);
            check "full prefix replayed" true t.Campaign.t_prefix_ok;
            check "final" true (t.Campaign.t_outcome = "final"))
          compiled);
    Alcotest.test_case "every rogue mode is detected on every program" `Slow
      (fun () ->
        match Campaign.run ~fuel ~seed:3 ~partners:28 () with
        | Error d -> Alcotest.failf "campaign: %s" (Diagnostics.to_string d)
        | Ok rp ->
          check "survival_ok" true (Campaign.survival_ok rp);
          check "no undetected rogues" true
            (Campaign.undetected_rogues rp = []);
          (* each rogue mode must be caught by its expected channel *)
          let by_mode m =
            List.filter (fun t -> t.Campaign.t_mode = m) rp.Campaign.rb_trials
          in
          let all_have m pred =
            check (Partner.mode_name m) true
              (by_mode m <> [] && List.for_all pred (by_mode m))
          in
          let has_prop p t = List.mem p t.Campaign.t_props in
          all_have Partner.Clobber_callee_save
            (has_prop Property.P_callee_save);
          all_have Partner.Wild_pointer (has_prop Property.P_memory);
          all_have Partner.Call_storm (has_prop Property.P_imports);
          all_have Partner.Early_halt (has_prop Property.P_welltyped);
          all_have Partner.Silent_divergence (fun t ->
              t.Campaign.t_outcome = "out-of-fuel");
          all_have Partner.Wrong_result (fun t ->
              List.mem "divergence" t.Campaign.t_detected_by);
          (* rogue trials still replay their prefix faithfully *)
          List.iter
            (fun t -> check "prefix" true t.Campaign.t_prefix_ok)
            rp.Campaign.rb_trials);
    Alcotest.test_case "same seed, same matrix" `Slow (fun () ->
        let json seed =
          match Campaign.run ~fuel ~seed ~partners:14 () with
          | Error d -> Alcotest.failf "campaign: %s" (Diagnostics.to_string d)
          | Ok rp -> Obs.Json.to_string (Campaign.to_json rp)
        in
        Alcotest.(check string) "reproducible" (json 11) (json 11);
        check "seed matters" true (json 11 <> json 12));
  ]

(* Two synthesized partners (one faithful, one rogue) linked with
   compose_all, then composed with the correct component: the survival
   matrix must still detect every rogue mode, and the rogue partner
   must not be able to hide behind its faithful sibling. *)
let multi_tests =
  [
    Alcotest.test_case "both-faithful control stays undetected" `Quick
      (fun () ->
        let compiled = Lazy.force compiled_corpus in
        let n_modes = List.length Partner.all_modes in
        List.iteri
          (fun k _ ->
            let t = Campaign.try_multi ~compiled ~fuel ~seed:7 (k * n_modes) in
            check "undetected" true (t.Campaign.t_verdict = Campaign.Undetected);
            check "full prefix replayed" true t.Campaign.t_prefix_ok;
            check "final" true (t.Campaign.t_outcome = "final"))
          compiled);
    Alcotest.test_case "every rogue mode detected with a faithful sibling"
      `Slow (fun () ->
        match Campaign.run_multi ~fuel ~seed:5 ~trials:28 () with
        | Error d -> Alcotest.failf "multi: %s" (Diagnostics.to_string d)
        | Ok rp ->
          check "multi_survival_ok" true (Campaign.multi_survival_ok rp);
          check "no undetected rogues" true
            (Campaign.undetected_rogues rp = []);
          (* every mode exercised at least once across 28 trials *)
          List.iter
            (fun m ->
              check (Partner.mode_name m) true
                (List.exists
                   (fun t -> t.Campaign.t_mode = m)
                   rp.Campaign.rb_trials))
            Partner.all_modes;
          (* the composite's replay prefix holds up to the global rogue
             activation even though it interleaves both partners *)
          List.iter
            (fun t -> check "prefix" true t.Campaign.t_prefix_ok)
            rp.Campaign.rb_trials);
    Alcotest.test_case "multi matrix is reproducible per seed" `Slow
      (fun () ->
        let json seed =
          match Campaign.run_multi ~fuel ~seed ~trials:14 () with
          | Error d -> Alcotest.failf "multi: %s" (Diagnostics.to_string d)
          | Ok rp -> Obs.Json.to_string (Campaign.to_json rp)
        in
        Alcotest.(check string) "reproducible" (json 11) (json 11);
        check "seed matters" true (json 11 <> json 12));
  ]

(* Unit-level monitor checks: feed boundary events by hand. *)
let monitor_tests =
  let sg = Mtypes.signature_main in
  let result_reg = Li.Mreg (Target.Conventions.loc_result sg) in
  let rs =
    Li.Pregfile.set_list
      [ (Li.PC, Vptr (1, 0)); (Li.RA, Vlong 0x1000L); (Li.SP, Vptr (2, 128)) ]
      Li.Pregfile.init
  in
  let q = { Li.aq_rs = rs; aq_mem = Mem.empty } in
  let good_reply =
    {
      Li.ar_rs =
        rs
        |> Li.Pregfile.set result_reg (Vint 3l)
        |> Li.Pregfile.set Li.PC (Vlong 0x1000L);
      ar_mem = Mem.empty;
    }
  in
  let mon () = Property.monitor ~exports:[ (1, ("f", sg)) ] ~partner_imports:[] () in
  let push m =
    m.Property.m_observe
      (Hcomp.Bpush { caller = Hcomp.C1; callee = Hcomp.C2; question = q })
  in
  let pop m r =
    m.Property.m_observe
      (Hcomp.Bpop { callee = Hcomp.C2; caller = Hcomp.C1; answer = r })
  in
  let props m = Property.violated (m.Property.m_violations ()) in
  [
    Alcotest.test_case "convention-respecting reply raises nothing" `Quick
      (fun () ->
        let m = mon () in
        push m;
        pop m good_reply;
        check "clean" true (props m = []);
        check "one call recorded" true
          (List.map (fun c -> c.Property.c_name) (m.Property.m_calls ())
          = [ "f" ]));
    Alcotest.test_case "not returning to RA is a callee-save violation"
      `Quick (fun () ->
        let m = mon () in
        push m;
        pop m
          { good_reply with
            Li.ar_rs = Li.Pregfile.set Li.PC (Vlong 0x9999L) good_reply.Li.ar_rs
          };
        check "callee-save" true (props m = [ Property.P_callee_save ]));
    Alcotest.test_case "undefined result is a welltyped violation" `Quick
      (fun () ->
        let m = mon () in
        push m;
        pop m
          { good_reply with
            Li.ar_rs = Li.Pregfile.set result_reg Vundef good_reply.Li.ar_rs
          };
        check "welltyped" true (props m = [ Property.P_welltyped ]));
    Alcotest.test_case "partner-initiated call outside imports" `Quick
      (fun () ->
        let m = mon () in
        m.Property.m_observe
          (Hcomp.Bpush { caller = Hcomp.C2; callee = Hcomp.C1; question = q });
        check "imports" true (props m = [ Property.P_imports ]));
  ]

(* The Hcomp hooks the campaign relies on: overlap diagnostics and
   boundary observation at real mutual-recursion depth. *)
let parse = Cfrontend.Cparser.parse_program

let trivial_lts name : (unit, int, unit, int, unit) Core.Smallstep.lts =
  {
    Core.Smallstep.name;
    dom = (fun _ -> true);
    init = (fun _ -> [ () ]);
    step = (fun _ -> []);
    at_external = (fun _ -> None);
    after_external = (fun _ _ -> []);
    final = (fun _ -> Some ());
  }

let hcomp_tests =
  [
    Alcotest.test_case "overlapping domains raise a diagnostic" `Quick
      (fun () ->
        let diags = ref [] in
        let l =
          Hcomp.compose
            ~on_diag:(fun d -> diags := d :: !diags)
            (trivial_lts "l1") (trivial_lts "l2")
        in
        ignore (l.Core.Smallstep.init 0);
        check "one overlap" true
          (List.exists
             (fun d ->
               d.Diagnostics.kind = Diagnostics.Domain_overlap)
             !diags));
    Alcotest.test_case "boundary observation at recursion depth >= 3" `Quick
      (fun () ->
        let mutual_a =
          "int odd(int n); int even(int n) { if (n == 0) return 1; return \
           odd(n - 1); }"
        and mutual_b =
          "int even(int n); int odd(int n) { if (n == 0) return 0; return \
           even(n - 1); }"
        in
        let p1 = parse mutual_a and p2 = parse mutual_b in
        let a1 = Errors.get (Driver.Compiler.compile_c_to_asm mutual_a) in
        let a2 = Errors.get (Driver.Compiler.compile_c_to_asm mutual_b) in
        let symbols =
          Driver.Linking.shared_symbols
            [ Iface.Ast.prog_defs_names p1; Iface.Ast.prog_defs_names p2 ]
        in
        let depth = ref 0 and max_depth = ref 0 and pushes = ref 0 in
        let observe = function
          | Hcomp.Bpush _ ->
            incr depth;
            incr pushes;
            if !depth > !max_depth then max_depth := !depth
          | Hcomp.Bpop _ -> decr depth
        in
        let composed =
          Hcomp.compose ~observe
            (Backend.Asm.semantics ~symbols a1)
            (Backend.Asm.semantics ~symbols a2)
        in
        let ge =
          Iface.Genv.globalenv ~symbols
            (Result.get_ok
               (Iface.Ast.link_list
                  ~internal_sig:Cfrontend.Csyntax.fn_sig [ p1; p2 ]))
        in
        let q =
          match
            ( Iface.Genv.find_symbol ge (Ident.intern "odd"),
              Iface.Genv.init_mem ~symbols
                (Result.get_ok
                   (Iface.Ast.link_list
                      ~internal_sig:Cfrontend.Csyntax.fn_sig [ p1; p2 ])) )
          with
          | Some b, Some m ->
            {
              Li.cq_vf = Vptr (b, 0);
              cq_sg = { Mtypes.sig_args = [ Mtypes.Tint ]; sig_res = Some Mtypes.Tint };
              cq_args = [ Vint 7l ];
              cq_mem = m;
            }
          | _ -> Alcotest.fail "no query"
        in
        (match Driver.Runners.run_a_level composed ~fuel q with
        | Ok (Core.Smallstep.Final (_, { Li.cr_res = Vint 1l; _ })) -> ()
        | Ok o -> Alcotest.failf "odd(7): %a" Driver.Runners.pp_c_outcome o
        | Error e -> Alcotest.failf "odd(7): %s" e);
        (* odd(7) ping-pongs across the boundary: after the initial
           entry (not a boundary event), 7 nested cross-calls *)
        check "balanced" true (!depth = 0);
        Alcotest.(check int) "pushes" 7 !pushes;
        check "depth >= 3" true (!max_depth >= 3));
  ]

let shared_symbols_tests =
  [
    Alcotest.test_case "shared_symbols dedups in first-occurrence order"
      `Quick (fun () ->
        let i = Ident.intern in
        let got =
          Driver.Linking.shared_symbols
            [
              [ i "c"; i "a"; i "c" ];
              [ i "b"; i "a"; i "d" ];
              [ i "d"; i "e" ];
            ]
        in
        Alcotest.(check (list string))
          "order" [ "c"; "a"; "b"; "d"; "e" ]
          (List.map Ident.name got));
  ]

let suite =
  ( "robust",
    name_tests @ corpus_tests @ campaign_tests @ multi_tests @ monitor_tests
    @ hcomp_tests @ shared_symbols_tests )
