(** Lockstep tests for the mutable execution-state cores (ISSUE 10).

    Every interpreter of the tower now runs on a flat mutable register
    file or locset ([semantics]) while retaining the persistent
    implementation ([semantics_naive]) as the reference. These tests pin
    the two contracts the mutable cores must honor:
    - lockstep: on generated programs and the examples/c corpus, the
      mutable and persistent interpreters produce identical rendered
      C-level outcomes at every level (RTL, LTL, Linear and Mach here;
      Asm threaded-vs-naive is covered by test_allocdiff);
    - copy-on-observe: the snapshots the LTS hands out at its
      interaction points (init, at_external) are never aliased to the
      live array a later step mutates — the caller's query register
      file, the globally shared [Pregfile.init], and an oracle's view
      of an external call must all stay bit-identical across the rest
      of the run. *)

open Support
open Memory.Values

let check = Alcotest.(check bool)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parses src =
  match Cfrontend.Cparser.parse_program src with
  | _ -> true
  | exception Cfrontend.Cparser.Parse_error _ -> false

let fuel = 2_000_000

(* Compile [src] once; run [main] under the mutable and the persistent
   interpreter of each level, rendering each C-level outcome. *)
let run_levels src =
  let p = Cfrontend.Cparser.parse_program src in
  let symbols = Iface.Ast.prog_defs_names p in
  let arts = Errors.get (Driver.Compiler.compile p) in
  let q = Option.get (Driver.Runners.main_query ~symbols ~defs:p ()) in
  let render o = Format.asprintf "%a" Driver.Runners.pp_c_outcome o in
  let rtl sem =
    Ok (render (Driver.Runners.run_c_level (sem ~symbols arts.Driver.Compiler.rtl) ~fuel q))
  in
  let ltl sem =
    Result.map render
      (Driver.Runners.run_l_level
         (sem ~symbols arts.Driver.Compiler.ltl_tunneled)
         ~fuel q)
  in
  let lin sem =
    Result.map render
      (Driver.Runners.run_l_level
         (sem ~symbols arts.Driver.Compiler.linear_clean)
         ~fuel q)
  in
  let mach sem =
    Result.map render
      (Driver.Runners.run_m_level (sem ~symbols arts.Driver.Compiler.mach) ~fuel q)
  in
  [
    ("RTL", rtl Middle.Rtl.semantics, rtl Middle.Rtl.semantics_naive);
    ("LTL", ltl Backend.Ltl.semantics, ltl Backend.Ltl.semantics_naive);
    ("Linear", lin Backend.Linear.semantics, lin Backend.Linear.semantics_naive);
    ("Mach", mach Backend.Mach.semantics, mach Backend.Mach.semantics_naive);
  ]

let mutable_matches_naive =
  QCheck.Test.make
    ~name:"mutable and persistent interpreters agree at every level" ~count:15
    Testlib.Test_gen.arb_program (fun src ->
      QCheck.assume (parses src);
      List.for_all
        (fun (level, mut, naive) ->
          if mut = naive then true
          else
            QCheck.Test.fail_reportf
              "%s: mutable and persistent interpreters disagree@.--- program \
               ---@.%s"
              level src)
        (run_levels src))

let qcheck_tests = List.map QCheck_alcotest.to_alcotest [ mutable_matches_naive ]

(* --- Snapshot isolation --------------------------------------------- *)

let pp_pregs rs = Format.asprintf "%a" Iface.Li.Pregfile.pp rs
let pp_mregs rs = Format.asprintf "%a" Target.Machregs.Regfile.pp rs

let compile_for src =
  let p = Cfrontend.Cparser.parse_program src in
  let symbols = Iface.Ast.prog_defs_names p in
  let arts = Errors.get (Driver.Compiler.compile p) in
  let q = Option.get (Driver.Runners.main_query ~symbols ~defs:p ()) in
  (symbols, arts, q)

let unit_tests =
  [
    Alcotest.test_case
      "mutable and persistent interpreters agree on examples/c" `Quick
      (fun () ->
        let dir = "../examples/c" in
        let files =
          Sys.readdir dir |> Array.to_list
          |> List.filter (fun f -> Filename.check_suffix f ".c")
          |> List.sort compare
        in
        check "corpus present" true (files <> []);
        List.iter
          (fun file ->
            let src = read_file (Filename.concat dir file) in
            List.iter
              (fun (level, mut, naive) ->
                check
                  (Printf.sprintf "%s: %s level agrees" file level)
                  true (mut = naive);
                check
                  (Printf.sprintf "%s: %s run completed" file level)
                  true (Result.is_ok mut))
              (run_levels src))
          files);
    Alcotest.test_case
      "init snapshot: a run never writes the caller's register file" `Quick
      (fun () ->
        let src =
          "int gcd(int a, int b) { while (b != 0) { int t = a; a = b; b = t % \
           b; } return a; }\n\
           int main(void) { return gcd(252, 105); }"
        in
        let symbols, arts, q = compile_for src in
        (match Driver.Runners.cc_ca.Core.Simconv.fwd_query q with
        | None -> Alcotest.fail "CA cannot marshal the query"
        | Some (_, aq) ->
          let before = pp_pregs aq.Iface.Li.aq_rs in
          let l = Backend.Asm.semantics ~symbols arts.Driver.Compiler.asm in
          (match Core.Smallstep.run ~fuel l ~oracle:(fun _ -> None) aq with
          | Core.Smallstep.Final _ -> ()
          | o ->
            Alcotest.failf "asm run did not finish: %a"
              (Core.Smallstep.pp_outcome (fun _ _ -> ())) o);
          check "query register file unscathed" true
            (pp_pregs aq.Iface.Li.aq_rs = before);
          check "global Pregfile.init unscathed" true
            (Array.for_all (fun v -> v = Vundef) Iface.Li.Pregfile.init));
        match Driver.Runners.cc_cm.Core.Simconv.fwd_query q with
        | None -> Alcotest.fail "CM cannot marshal the query"
        | Some (_, mq) ->
          let before = pp_mregs mq.Iface.Li.mq_rs in
          let l = Backend.Mach.semantics ~symbols arts.Driver.Compiler.mach in
          ignore (Core.Smallstep.run ~fuel l ~oracle:(fun _ -> None) mq);
          check "Mach query register file unscathed" true
            (pp_mregs mq.Iface.Li.mq_rs = before));
    Alcotest.test_case
      "at_external snapshot is not aliased by later mutation" `Quick
      (fun () ->
        (* Two external calls with internal computation between and after
           them: if [at_external] handed the oracle the live array, the
           steps after the first reply would scribble over the oracle's
           snapshot. *)
        let src =
          "int ext(int x);\n\
           int twice(int x) { return x + x; }\n\
           int main(void) { int a = ext(5); int b = twice(a); return ext(b) + \
           b; }"
        in
        let symbols, arts, q = compile_for src in
        let result_reg =
          Iface.Li.Mreg
            (Target.Conventions.loc_result
               { Memory.Mtypes.sig_args = [ Memory.Mtypes.Tint ];
                 sig_res = Some Memory.Mtypes.Tint })
        in
        let captured = ref None in
        let oracle (aq : Iface.Li.a_query) =
          if !captured = None then
            captured := Some (aq.Iface.Li.aq_rs, pp_pregs aq.Iface.Li.aq_rs);
          let rs' =
            Iface.Li.Pregfile.set Iface.Li.PC
              (Iface.Li.Pregfile.get Iface.Li.RA aq.Iface.Li.aq_rs)
              (Iface.Li.Pregfile.set result_reg (Vint 7l) aq.Iface.Li.aq_rs)
          in
          Some { Iface.Li.ar_rs = rs'; ar_mem = aq.Iface.Li.aq_mem }
        in
        let outcome =
          Driver.Runners.run_a_level
            (Backend.Asm.semantics ~symbols arts.Driver.Compiler.asm)
            ~fuel ~oracle q
        in
        (match outcome with
        | Ok (Core.Smallstep.Final _) -> ()
        | Ok o ->
          Alcotest.failf "run did not finish: %a" Driver.Runners.pp_c_outcome o
        | Error e -> Alcotest.failf "marshal error: %s" e);
        match !captured with
        | None -> Alcotest.fail "no external call reached the oracle"
        | Some (rs, before) ->
          check "external-call snapshot unchanged after the run" true
            (pp_pregs rs = before));
  ]

let suite = ("mutstate", qcheck_tests @ unit_tests)
