(** Tests for the supervised batch-execution layer ([lib/harness]):
    deterministic backoff/jitter schedules, circuit-breaker state
    transitions including the half-open probe, the crash-safe
    checkpoint journal (torn lines, last-status-wins), process-isolated
    workers (crash / timeout / OOM classification), and the supervisor
    end to end — retry after a worker [kill -9], degraded fallback,
    breaker shedding, and journal-driven resume. *)

module Diag = Support.Diagnostics
module Backoff = Harness.Backoff
module Breaker = Harness.Breaker
module Checkpoint = Harness.Checkpoint
module Worker = Harness.Worker
module Sup = Harness.Supervisor

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let tmpfile name =
  let path = Filename.temp_file "occo-harness-" ("-" ^ name) in
  at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
  path

(* ------------------------------------------------------------------ *)
(* Backoff                                                            *)
(* ------------------------------------------------------------------ *)

let backoff_tests =
  [
    Alcotest.test_case "raw delays grow geometrically and cap" `Quick
      (fun () ->
        let p = Backoff.default in
        check "attempt 1 = base" true
          (Backoff.raw_delay_us p ~attempt:1 = p.Backoff.base_us);
        check "attempt 2 = base*factor" true
          (Backoff.raw_delay_us p ~attempt:2
          = p.Backoff.base_us *. p.Backoff.factor);
        check "attempt 3 = base*factor^2" true
          (Backoff.raw_delay_us p ~attempt:3
          = p.Backoff.base_us *. (p.Backoff.factor ** 2.));
        check "large attempts hit the cap" true
          (Backoff.raw_delay_us p ~attempt:40 = p.Backoff.max_us));
    Alcotest.test_case "jitter stays within the advertised band" `Quick
      (fun () ->
        let p = Backoff.default in
        let rng = Random.State.make [| 42 |] in
        for attempt = 1 to 8 do
          let raw = Backoff.raw_delay_us p ~attempt in
          let d = Backoff.delay_us p ~rng ~attempt in
          let lo = raw *. (1. -. p.Backoff.jitter)
          and hi = raw *. (1. +. p.Backoff.jitter) in
          check
            (Printf.sprintf "attempt %d: %.0f in [%.0f, %.0f]" attempt d lo hi)
            true
            (d >= lo && d <= hi)
        done);
    Alcotest.test_case "same seed, same schedule (deterministic)" `Quick
      (fun () ->
        let p = Backoff.default in
        let s1 =
          Backoff.schedule p ~rng:(Random.State.make [| 7; 13 |]) ~retries:6
        in
        let s2 =
          Backoff.schedule p ~rng:(Random.State.make [| 7; 13 |]) ~retries:6
        in
        check_int "length" 6 (List.length s1);
        check "identical schedules" true (s1 = s2));
    Alcotest.test_case "different seeds de-synchronize the jitter" `Quick
      (fun () ->
        let p = Backoff.default in
        let s1 =
          Backoff.schedule p ~rng:(Random.State.make [| 1 |]) ~retries:6
        in
        let s2 =
          Backoff.schedule p ~rng:(Random.State.make [| 2 |]) ~retries:6
        in
        check "schedules differ" true (s1 <> s2));
    Alcotest.test_case "zero jitter reduces to the raw schedule" `Quick
      (fun () ->
        let p = { Backoff.default with Backoff.jitter = 0. } in
        let rng = Random.State.make [| 0 |] in
        for attempt = 1 to 5 do
          check "raw" true
            (Backoff.delay_us p ~rng ~attempt = Backoff.raw_delay_us p ~attempt)
        done);
  ]

(* ------------------------------------------------------------------ *)
(* Breaker                                                            *)
(* ------------------------------------------------------------------ *)

let breaker_tests =
  [
    Alcotest.test_case "stays closed below the threshold; ok resets" `Quick
      (fun () ->
        let b = Breaker.create ~threshold:3 ~cooldown_us:1e6 "t" in
        Breaker.record b ~now_us:0. ~ok:false;
        Breaker.record b ~now_us:1. ~ok:false;
        Breaker.record b ~now_us:2. ~ok:true;
        (* the streak was broken: two more failures still don't trip *)
        Breaker.record b ~now_us:3. ~ok:false;
        Breaker.record b ~now_us:4. ~ok:false;
        check "still closed" true (Breaker.state b ~now_us:5. = Breaker.Closed);
        check "still allows" true (Breaker.allow b ~now_us:5.);
        check_int "no trips" 0 (Breaker.trips b));
    Alcotest.test_case "trips open at threshold consecutive failures" `Quick
      (fun () ->
        let b = Breaker.create ~threshold:3 ~cooldown_us:1e6 "t" in
        List.iter (fun t -> Breaker.record b ~now_us:t ~ok:false) [ 0.; 1.; 2. ];
        check "open" true (Breaker.state b ~now_us:3. = Breaker.Open);
        check "sheds while open" false (Breaker.allow b ~now_us:3.);
        check_int "one trip" 1 (Breaker.trips b));
    Alcotest.test_case "half-open after cooldown admits a single probe" `Quick
      (fun () ->
        let b = Breaker.create ~threshold:1 ~cooldown_us:100. "t" in
        Breaker.record b ~now_us:0. ~ok:false;
        check "open before cooldown" false (Breaker.allow b ~now_us:50.);
        check "half-open after cooldown" true
          (Breaker.state b ~now_us:200. = Breaker.Half_open);
        check "probe admitted" true (Breaker.allow b ~now_us:200.);
        check "second job shed while probe is in flight" false
          (Breaker.allow b ~now_us:201.));
    Alcotest.test_case "successful probe closes the breaker" `Quick
      (fun () ->
        let b = Breaker.create ~threshold:1 ~cooldown_us:100. "t" in
        Breaker.record b ~now_us:0. ~ok:false;
        check "probe" true (Breaker.allow b ~now_us:200.);
        Breaker.record b ~now_us:210. ~ok:true;
        check "closed again" true
          (Breaker.state b ~now_us:211. = Breaker.Closed);
        check "allows freely" true
          (Breaker.allow b ~now_us:212. && Breaker.allow b ~now_us:213.));
    Alcotest.test_case "failed probe re-opens for another cooldown" `Quick
      (fun () ->
        let b = Breaker.create ~threshold:1 ~cooldown_us:100. "t" in
        Breaker.record b ~now_us:0. ~ok:false;
        check "probe" true (Breaker.allow b ~now_us:200.);
        Breaker.record b ~now_us:210. ~ok:false;
        check "open again" true (Breaker.state b ~now_us:211. = Breaker.Open);
        check "sheds again" false (Breaker.allow b ~now_us:250.);
        check_int "two trips" 2 (Breaker.trips b);
        (* and the new cooldown is measured from the re-open *)
        check "half-open after the second cooldown" true
          (Breaker.allow b ~now_us:320.));
  ]

(* ------------------------------------------------------------------ *)
(* Checkpoint journal                                                 *)
(* ------------------------------------------------------------------ *)

let entry id status attempts =
  {
    Checkpoint.e_id = id;
    e_class = "test";
    e_status = status;
    e_attempts = attempts;
    e_elapsed_us = 12.5;
  }

let checkpoint_tests =
  [
    Alcotest.test_case "missing journal is an empty journal" `Quick
      (fun () ->
        check "empty" true
          (Checkpoint.load "/nonexistent/occo-journal.jsonl" = []));
    Alcotest.test_case "appended entries round-trip through load" `Quick
      (fun () ->
        let path = tmpfile "roundtrip.jsonl" in
        let w = Checkpoint.open_journal ~truncate:true path in
        Checkpoint.append w (entry "a" "ok" 1);
        Checkpoint.append w (entry "b" "failed" 3);
        Checkpoint.close w;
        match Checkpoint.load path with
        | [ a; b ] ->
          check "a id" true (a.Checkpoint.e_id = "a");
          check "a status" true (a.Checkpoint.e_status = "ok");
          check_int "b attempts" 3 b.Checkpoint.e_attempts;
          check "b elapsed" true (b.Checkpoint.e_elapsed_us = 12.5)
        | es -> Alcotest.failf "expected 2 entries, got %d" (List.length es));
    Alcotest.test_case "a torn final line is skipped, not fatal" `Quick
      (fun () ->
        let path = tmpfile "torn.jsonl" in
        let w = Checkpoint.open_journal ~truncate:true path in
        Checkpoint.append w (entry "a" "ok" 1);
        Checkpoint.close w;
        (* simulate a kill -9 mid-write: a half-written record *)
        let oc = open_out_gen [ Open_append ] 0o644 path in
        output_string oc "{\"job\": \"b\", \"stat";
        close_out oc;
        match Checkpoint.load path with
        | [ a ] -> check "only the whole line" true (a.Checkpoint.e_id = "a")
        | es -> Alcotest.failf "expected 1 entry, got %d" (List.length es));
    Alcotest.test_case "completed_ids: last status wins, failures retry" `Quick
      (fun () ->
        let entries =
          [
            entry "a" "ok" 1;
            entry "b" "crashed" 2;
            entry "c" "ok" 1;
            entry "c" "failed" 1;
            (* later failure: c must re-run *)
            entry "d" "failed" 1;
            entry "d" "degraded" 2;
            (* later degraded completion: d skips *)
          ]
        in
        let ids = Checkpoint.completed_ids entries in
        check "a completed" true (Hashtbl.mem ids "a");
        check "b (crashed) retries" false (Hashtbl.mem ids "b");
        check "c (ok then failed) retries" false (Hashtbl.mem ids "c");
        check "d (failed then degraded) skips" true (Hashtbl.mem ids "d"));
    Alcotest.test_case "truncate starts afresh; append preserves" `Quick
      (fun () ->
        let path = tmpfile "trunc.jsonl" in
        let w = Checkpoint.open_journal ~truncate:true path in
        Checkpoint.append w (entry "old" "ok" 1);
        Checkpoint.close w;
        let w = Checkpoint.open_journal path in
        Checkpoint.append w (entry "new" "ok" 1);
        Checkpoint.close w;
        check_int "append keeps both" 2 (List.length (Checkpoint.load path));
        let w = Checkpoint.open_journal ~truncate:true path in
        Checkpoint.append w (entry "fresh" "ok" 1);
        Checkpoint.close w;
        match Checkpoint.load path with
        | [ e ] -> check "only the fresh entry" true (e.Checkpoint.e_id = "fresh")
        | es -> Alcotest.failf "expected 1 entry, got %d" (List.length es));
  ]

(* ------------------------------------------------------------------ *)
(* Checkpoint compaction                                              *)
(* ------------------------------------------------------------------ *)

let compact_tests =
  [
    Alcotest.test_case "compact keeps the last status per id" `Quick
      (fun () ->
        let path = tmpfile "compact.jsonl" in
        let w = Checkpoint.open_journal ~truncate:true path in
        Checkpoint.append w (entry "a" "crashed" 1);
        Checkpoint.append w (entry "b" "ok" 1);
        Checkpoint.append w (entry "a" "crashed" 2);
        Checkpoint.append w (entry "a" "ok" 3);
        Checkpoint.close w;
        let kept, dropped = Checkpoint.compact path in
        check_int "two survivors" 2 kept;
        check_int "two superseded lines dropped" 2 dropped;
        (match Checkpoint.load path with
        | [ a; b ] ->
          (* first-appearance order, each with its final status *)
          check "a first" true (a.Checkpoint.e_id = "a");
          check "a final status" true (a.Checkpoint.e_status = "ok");
          check_int "a final attempts" 3 a.Checkpoint.e_attempts;
          check "b second" true (b.Checkpoint.e_id = "b")
        | es -> Alcotest.failf "expected 2 entries, got %d" (List.length es));
        (* compaction is idempotent *)
        let kept2, dropped2 = Checkpoint.compact path in
        check_int "second pass keeps both" 2 kept2;
        check_int "second pass drops nothing" 0 dropped2);
    Alcotest.test_case "compact drops torn and foreign lines" `Quick
      (fun () ->
        let path = tmpfile "compact-torn.jsonl" in
        let w = Checkpoint.open_journal ~truncate:true path in
        Checkpoint.append w (entry "a" "ok" 1);
        Checkpoint.append_json w
          (Obs.Json.Obj [ ("note", Obs.Json.Str "not an entry") ]);
        Checkpoint.close w;
        let oc = open_out_gen [ Open_append ] 0o644 path in
        output_string oc "{\"job\": \"b\", \"stat";
        close_out oc;
        let kept, dropped = Checkpoint.compact path in
        check_int "one entry survives" 1 kept;
        check_int "foreign + torn dropped" 2 dropped;
        match Checkpoint.load path with
        | [ a ] -> check "a" true (a.Checkpoint.e_id = "a")
        | es -> Alcotest.failf "expected 1 entry, got %d" (List.length es));
    Alcotest.test_case "compacting a missing journal is a no-op" `Quick
      (fun () ->
        check "zero" true
          (Checkpoint.compact "/nonexistent/occo-journal.jsonl" = (0, 0)));
    Alcotest.test_case "a compacted journal still resumes correctly" `Quick
      (fun () ->
        let path = tmpfile "compact-resume.jsonl" in
        let w = Checkpoint.open_journal ~truncate:true path in
        Checkpoint.append w (entry "a" "ok" 1);
        Checkpoint.append w (entry "b" "failed" 2);
        Checkpoint.append w (entry "c" "poisoned" 3);
        Checkpoint.close w;
        ignore (Checkpoint.compact path);
        let ids = Checkpoint.completed_ids (Checkpoint.load path) in
        check "a still done" true (Hashtbl.mem ids "a");
        check "b still retries" false (Hashtbl.mem ids "b");
        (* the poisoned marker — what `occo serve --resume` greps for —
           must survive compaction verbatim *)
        check "c still poisoned" true
          (List.exists
             (fun e ->
               e.Checkpoint.e_id = "c" && e.Checkpoint.e_status = "poisoned")
             (Checkpoint.load path)));
  ]

(* ------------------------------------------------------------------ *)
(* Breaker under the service admission loop                           *)
(* ------------------------------------------------------------------ *)

(* The serve loop calls [allow] once per queued request each launch
   round and [record] when the worker concludes. These tests drive the
   breaker exactly that way, with a simulated clock. *)
let breaker_service_tests =
  [
    Alcotest.test_case "open breaker sheds a whole queued burst" `Quick
      (fun () ->
        let b = Breaker.create ~threshold:2 ~cooldown_us:1_000. "svc" in
        Breaker.record b ~now_us:0. ~ok:false;
        Breaker.record b ~now_us:10. ~ok:false;
        (* six requests queued while open: every admission check fails *)
        let admitted =
          List.filter (fun t -> Breaker.allow b ~now_us:t)
            [ 20.; 30.; 40.; 50.; 60.; 70. ]
        in
        check_int "all shed" 0 (List.length admitted));
    Alcotest.test_case
      "half-open: one probe from a burst of queued requests" `Quick
      (fun () ->
        let b = Breaker.create ~threshold:2 ~cooldown_us:1_000. "svc" in
        Breaker.record b ~now_us:0. ~ok:false;
        Breaker.record b ~now_us:10. ~ok:false;
        (* cooldown elapses with five requests waiting; the same launch
           round polls allow for each of them *)
        let admitted =
          List.filter (fun t -> Breaker.allow b ~now_us:t)
            [ 1_100.; 1_101.; 1_102.; 1_103.; 1_104. ]
        in
        check_int "exactly one probe admitted" 1 (List.length admitted);
        (* probe succeeds: the next round admits everyone *)
        Breaker.record b ~now_us:1_200. ~ok:true;
        let admitted =
          List.filter (fun t -> Breaker.allow b ~now_us:t)
            [ 1_300.; 1_301.; 1_302. ]
        in
        check_int "closed again, burst admitted" 3 (List.length admitted));
    Alcotest.test_case "failed probe re-opens; queue keeps shedding" `Quick
      (fun () ->
        let b = Breaker.create ~threshold:2 ~cooldown_us:1_000. "svc" in
        Breaker.record b ~now_us:0. ~ok:false;
        Breaker.record b ~now_us:10. ~ok:false;
        check "probe admitted" true (Breaker.allow b ~now_us:1_100.);
        Breaker.record b ~now_us:1_150. ~ok:false;
        check_int "re-opened (second trip)" 2 (Breaker.trips b);
        (* the fresh cooldown is measured from the re-open, so the
           still-queued requests shed for another full window... *)
        check "sheds right after re-open" false
          (Breaker.allow b ~now_us:1_200.);
        check "sheds near the end of the window" false
          (Breaker.allow b ~now_us:2_100.);
        (* ...and only then is a second probe admitted *)
        check "second probe after the full cooldown" true
          (Breaker.allow b ~now_us:2_200.));
    Alcotest.test_case "late failure from a pre-open worker is ignored"
      `Quick (fun () ->
        (* a worker launched before the trip concludes while the
           breaker is open: its outcome must not extend the cooldown *)
        let b = Breaker.create ~threshold:1 ~cooldown_us:1_000. "svc" in
        Breaker.record b ~now_us:0. ~ok:false;
        Breaker.record b ~now_us:500. ~ok:false;
        check "probe timing unaffected by the late failure" true
          (Breaker.allow b ~now_us:1_100.));
  ]

(* ------------------------------------------------------------------ *)
(* Worker                                                             *)
(* ------------------------------------------------------------------ *)

let worker_tests =
  [
    Alcotest.test_case "a healthy job's result crosses the pipe" `Quick
      (fun () ->
        match Worker.run (fun () -> Ok (6 * 7)) with
        | Worker.Returned (Ok 42) -> ()
        | _ -> Alcotest.fail "expected Returned (Ok 42)");
    Alcotest.test_case "a structured Error is a result, not a crash" `Quick
      (fun () ->
        let d =
          Diag.make ~phase:Diag.Batch ~kind:Diag.Validation_failure "no"
        in
        match Worker.run (fun () -> Error d) with
        | Worker.Returned (Error d') ->
          check "kind survives marshaling" true
            (d'.Diag.kind = Diag.Validation_failure)
        | _ -> Alcotest.fail "expected Returned (Error _)");
    Alcotest.test_case "an uncaught exception becomes a diagnostic" `Quick
      (fun () ->
        match Worker.run (fun () -> failwith "boom") with
        | Worker.Returned (Error d) ->
          check "internal error" true (d.Diag.kind = Diag.Internal_error)
        | _ -> Alcotest.fail "expected Returned (Error _)");
    Alcotest.test_case "kill -9 in the child is classified as a crash" `Quick
      (fun () ->
        match
          Worker.run (fun () ->
              Unix.kill (Unix.getpid ()) Sys.sigkill;
              Ok 0)
        with
        | Worker.Crashed why ->
          check
            (Printf.sprintf "names the signal: %s" why)
            true
            (why = "SIGKILL")
        | _ -> Alcotest.fail "expected Crashed");
    Alcotest.test_case "a hung job is killed at its deadline" `Quick
      (fun () ->
        match
          Worker.run ~timeout_us:200_000. (fun () ->
              while true do
                ignore (Sys.opaque_identity 0)
              done;
              Ok 0)
        with
        | Worker.Timed_out -> ()
        | _ -> Alcotest.fail "expected Timed_out");
    Alcotest.test_case "a runaway allocator trips the memory watchdog" `Quick
      (fun () ->
        match
          Worker.run ~timeout_us:20e6 ~memlimit_bytes:(32 * 1024 * 1024)
            (fun () ->
              let rec grow acc =
                grow (Array.make 65536 (List.length acc) :: acc)
              in
              grow [])
        with
        | Worker.Oom -> ()
        | _ -> Alcotest.fail "expected Oom");
  ]

(* ------------------------------------------------------------------ *)
(* Supervisor                                                         *)
(* ------------------------------------------------------------------ *)

(* Fast retry schedule so the tests don't sleep for real. *)
let fast_backoff =
  { Backoff.base_us = 1_000.; factor = 2.0; max_us = 5_000.; jitter = 0.25 }

let test_config =
  {
    Sup.default_config with
    Sup.c_backoff = fast_backoff;
    c_timeout_us = Some 20e6;
    c_seed = 1;
  }

let job ?degraded ?(cls = "test") id run =
  { Sup.job_id = id; job_class = cls; job_run = run; job_degraded = degraded }

let find outcomes id =
  match List.find_opt (fun o -> o.Sup.o_id = id) outcomes with
  | Some o -> o
  | None -> Alcotest.failf "no outcome for job %s" id

let supervisor_tests =
  [
    Alcotest.test_case "a worker killed -9 is retried and succeeds" `Quick
      (fun () ->
        (* Attempt 0 SIGKILLs its own worker process — the simulated
           [kill -9]; Job_crashed is transient, so the supervisor backs
           off and retries, and attempt 1 completes. *)
        let j =
          job "flaky" (fun ~attempt ->
              if attempt = 0 then Unix.kill (Unix.getpid ()) Sys.sigkill;
              Ok attempt)
        in
        let o = find (Sup.run test_config [ j ]) "flaky" in
        check "completed" true (o.Sup.o_status = Sup.Completed);
        check "payload from the retry" true (o.Sup.o_payload = Some 1);
        check_int "two launches" 2 o.Sup.o_attempts);
    Alcotest.test_case "a deterministic failure is not retried" `Quick
      (fun () ->
        let d =
          Diag.make ~phase:Diag.Batch ~kind:Diag.Validation_failure "wrong"
        in
        let j = job "det" (fun ~attempt:_ -> Error d) in
        let o = find (Sup.run test_config [ j ]) "det" in
        check "failed" true (o.Sup.o_status = Sup.Failed);
        check_int "single launch" 1 o.Sup.o_attempts;
        check "diagnostic kept" true
          (match o.Sup.o_diag with
          | Some d' -> d'.Diag.kind = Diag.Validation_failure
          | None -> false));
    Alcotest.test_case "exhausted retries fall back to the degraded run"
      `Quick (fun () ->
        let j =
          job "deg"
            ~degraded:(fun () -> Ok (-1))
            (fun ~attempt:_ ->
              Unix.kill (Unix.getpid ()) Sys.sigkill;
              Ok 0)
        in
        let cfg = { test_config with Sup.c_retries = 1 } in
        let o = find (Sup.run cfg [ j ]) "deg" in
        check "degraded" true (o.Sup.o_status = Sup.Degraded);
        check "fallback payload" true (o.Sup.o_payload = Some (-1));
        (* two crashed attempts + the degraded one *)
        check_int "three launches" 3 o.Sup.o_attempts);
    Alcotest.test_case "a failing class trips its breaker; later jobs shed"
      `Quick (fun () ->
        let d =
          Diag.make ~phase:Diag.Batch ~kind:Diag.Validation_failure "wrong"
        in
        let bad i = job (Printf.sprintf "bad%d" i) (fun ~attempt:_ -> Error d) in
        let cfg =
          {
            test_config with
            Sup.c_breaker_threshold = 2;
            c_breaker_cooldown_us = 60e6 (* stays open for the whole test *);
          }
        in
        let outcomes = Sup.run cfg (List.init 4 bad) in
        check "bad0 ran and failed" true
          ((find outcomes "bad0").Sup.o_status = Sup.Failed);
        check "bad1 ran and failed" true
          ((find outcomes "bad1").Sup.o_status = Sup.Failed);
        List.iter
          (fun id ->
            let o = find outcomes id in
            check (id ^ " shed") true (o.Sup.o_status = Sup.Shed);
            check_int (id ^ " never launched") 0 o.Sup.o_attempts;
            check (id ^ " has a circuit-open diagnostic") true
              (match o.Sup.o_diag with
              | Some d' -> d'.Diag.kind = Diag.Circuit_open
              | None -> false))
          [ "bad2"; "bad3" ];
        check "summary counts the shed jobs" true
          (Sup.count outcomes Sup.Shed = 2));
    Alcotest.test_case "journal + resume skip completed jobs after kill -9"
      `Quick (fun () ->
        let path = tmpfile "resume.jsonl" in
        (* First run: "a" completes; "b"'s worker dies by kill -9 on
           every attempt and ends Crashed — as if the batch was cut
           down mid-run. *)
        let a = job "a" (fun ~attempt:_ -> Ok 1) in
        let b_bad =
          job "b" (fun ~attempt:_ ->
              Unix.kill (Unix.getpid ()) Sys.sigkill;
              Ok 0)
        in
        let cfg =
          { test_config with Sup.c_retries = 1; c_journal = Some path }
        in
        let o1 = Sup.run cfg [ a; b_bad ] in
        check "a completed" true ((find o1 "a").Sup.o_status = Sup.Completed);
        check "b crashed" true ((find o1 "b").Sup.o_status = Sup.Crashed);
        (* the journal recorded both outcomes durably *)
        let ids = Checkpoint.completed_ids (Checkpoint.load path) in
        check "journal completed a" true (Hashtbl.mem ids "a");
        check "journal did not complete b" false (Hashtbl.mem ids "b");
        (* Resume: "a" is skipped without launching a worker; "b" —
           healthy this time — runs to completion. *)
        let b_ok = job "b" (fun ~attempt:_ -> Ok 2) in
        let cfg2 = { cfg with Sup.c_resume = true } in
        let o2 = Sup.run cfg2 [ a; b_ok ] in
        let oa = find o2 "a" and ob = find o2 "b" in
        check "a skipped" true (oa.Sup.o_status = Sup.Skipped);
        check_int "a not launched" 0 oa.Sup.o_attempts;
        check "b completed on resume" true (ob.Sup.o_status = Sup.Completed);
        check "resumed batch is all ok" true (Sup.all_ok o2);
        (* and now the journal completes b too *)
        let ids = Checkpoint.completed_ids (Checkpoint.load path) in
        check "journal completed b" true (Hashtbl.mem ids "b"));
    Alcotest.test_case "parallel workers deliver every result in order"
      `Quick (fun () ->
        let js =
          List.init 6 (fun i ->
              job (Printf.sprintf "j%d" i) (fun ~attempt:_ -> Ok (i * i)))
        in
        let cfg = { test_config with Sup.c_jobs = 3 } in
        let outcomes = Sup.run cfg js in
        check "all ok" true (Sup.all_ok outcomes);
        check "outcomes in job order" true
          (List.map (fun o -> o.Sup.o_id) outcomes
          = List.init 6 (Printf.sprintf "j%d"));
        List.iteri
          (fun i o -> check "payload" true (o.Sup.o_payload = Some (i * i)))
          outcomes);
  ]

(* ------------------------------------------------------------------ *)
(* Monotonic clock (satellite: lib/obs/control.ml)                    *)
(* ------------------------------------------------------------------ *)

let clock_tests =
  [
    Alcotest.test_case "now_us never goes backwards" `Quick (fun () ->
        let prev = ref (Obs.now_us ()) in
        for _ = 1 to 10_000 do
          let t = Obs.now_us () in
          check "monotonic" true (t >= !prev);
          prev := t
        done);
  ]

let suite =
  ( "harness",
    backoff_tests @ breaker_tests @ breaker_service_tests @ checkpoint_tests
    @ compact_tests @ worker_tests @ supervisor_tests @ clock_tests )
