(** Reference implementation of the memory model for differential
    testing: the straightforward per-byte representation (one persistent
    map entry per offset for both permissions and contents) that
    [Memory.Mem] used before its interval/chunked rewrite. It is kept
    deliberately naive — every operation is the textbook reading of
    Fig. 4 — so random operation sequences can be checked against it.

    The only intentional divergence from the historical code is
    [grant_perm], which here (like the production module) clamps the
    range to the block's bounds and rejects ranges entirely outside
    them; the old unclamped behavior could mint permissions outside
    [lo, hi), which was a bug. *)

open Memory.Values
open Memory.Memdata

type permission = Memory.Mem.permission =
  | Nonempty
  | Readable
  | Writable
  | Freeable

let perm_rank = function
  | Nonempty -> 0
  | Readable -> 1
  | Writable -> 2
  | Freeable -> 3

let perm_order p1 p2 = perm_rank p1 >= perm_rank p2

module IMap = Map.Make (Int)

type block_info = {
  lo : int;
  hi : int;
  contents : memval IMap.t;  (** default [Undef] *)
  perms : permission IMap.t;  (** absent = no permission *)
}

type t = { next_block : block; blocks : block_info IMap.t }

let empty = { next_block = 1; blocks = IMap.empty }
let nextblock m = m.next_block

let block_bounds m b =
  match IMap.find_opt b m.blocks with
  | Some bi -> Some (bi.lo, bi.hi)
  | None -> None

let perm m b ofs p =
  match IMap.find_opt b m.blocks with
  | None -> false
  | Some bi -> (
    match IMap.find_opt ofs bi.perms with
    | None -> false
    | Some p' -> perm_order p' p)

let range_perm m b lo hi p =
  let rec go ofs = ofs >= hi || (perm m b ofs p && go (ofs + 1)) in
  go lo

let valid_pointer m b ofs = perm m b ofs Nonempty

let alloc m lo hi =
  let b = m.next_block in
  let perms =
    let rec fill ofs acc =
      if ofs >= hi then acc else fill (ofs + 1) (IMap.add ofs Freeable acc)
    in
    fill lo IMap.empty
  in
  let bi = { lo; hi; contents = IMap.empty; perms } in
  ({ next_block = b + 1; blocks = IMap.add b bi m.blocks }, b)

let free m b lo hi =
  if lo >= hi then Some m
  else if not (range_perm m b lo hi Freeable) then None
  else
    match IMap.find_opt b m.blocks with
    | None -> None
    | Some bi ->
      let rec clear ofs perms =
        if ofs >= hi then perms else clear (ofs + 1) (IMap.remove ofs perms)
      in
      let bi = { bi with perms = clear lo bi.perms } in
      Some { m with blocks = IMap.add b bi m.blocks }

let drop_range m b lo hi = free m b lo hi

let drop_perm m b lo hi p =
  if not (range_perm m b lo hi p) then None
  else
    match IMap.find_opt b m.blocks with
    | None -> None
    | Some bi ->
      let rec set ofs perms =
        if ofs >= hi then perms else set (ofs + 1) (IMap.add ofs p perms)
      in
      let bi = { bi with perms = set lo bi.perms } in
      Some { m with blocks = IMap.add b bi m.blocks }

let grant_perm m b lo hi p =
  match IMap.find_opt b m.blocks with
  | None -> None
  | Some bi ->
    if lo >= hi then Some m
    else
      let lo = max lo bi.lo and hi = min hi bi.hi in
      if lo >= hi then None
      else
        let rec set ofs perms =
          if ofs >= hi then perms else set (ofs + 1) (IMap.add ofs p perms)
        in
        let bi = { bi with perms = set lo bi.perms } in
        Some { m with blocks = IMap.add b bi m.blocks }

let getN bi ofs n =
  List.init n (fun i ->
      Option.value (IMap.find_opt (ofs + i) bi.contents) ~default:Undef)

let setN bi ofs mvl =
  let contents, _ =
    List.fold_left
      (fun (c, i) mv -> (IMap.add (ofs + i) mv c, i + 1))
      (bi.contents, 0) mvl
  in
  { bi with contents }

let aligned chunk ofs = ofs mod align_chunk chunk = 0

let loadbytes m b ofs n =
  if n < 0 then None
  else if not (range_perm m b ofs (ofs + n) Readable) then None
  else
    match IMap.find_opt b m.blocks with
    | None -> None
    | Some bi -> Some (getN bi ofs n)

let storebytes m b ofs mvl =
  let n = List.length mvl in
  if not (range_perm m b ofs (ofs + n) Writable) then None
  else
    match IMap.find_opt b m.blocks with
    | None -> None
    | Some bi ->
      Some { m with blocks = IMap.add b (setN bi ofs mvl) m.blocks }

let load chunk m b ofs =
  if not (aligned chunk ofs) then None
  else
    match loadbytes m b ofs (size_chunk chunk) with
    | None -> None
    | Some mvl -> Some (decode_val chunk mvl)

let store chunk m b ofs v =
  if not (aligned chunk ofs) then None
  else if not (range_perm m b ofs (ofs + size_chunk chunk) Writable) then None
  else storebytes m b ofs (encode_val chunk v)

let contents_at m b ofs =
  match IMap.find_opt b m.blocks with
  | None -> Undef
  | Some bi -> Option.value (IMap.find_opt ofs bi.contents) ~default:Undef

let perm_at m b ofs =
  match IMap.find_opt b m.blocks with
  | None -> None
  | Some bi -> IMap.find_opt ofs bi.perms
