(** Tests for the open-semantics framework: LTS execution, horizontal
    composition (Def. 3.2 / Fig. 5), layered composition (§3.5) and the
    closed semantics (Table 4, row 1).

    Toy components over a tiny "arithmetic server" interface: questions
    are [(name, argument)] pairs and answers are integers. *)

open Core
open Core.Smallstep

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

type q = string * int
type r = int

(* A component handling [names]: on [(f, n)], if [f] is one of its
   functions it computes locally, possibly making one outgoing call. *)
type toy_state =
  | Start of q
  | Waiting of string * int  (** made an outgoing call, will add [k] *)
  | Done of int

(* [double] computes 2n directly; [quad] calls [double n] and doubles the
   answer; [inc] computes n+1; [loopy] diverges. *)
let toy_component (name : string) : (toy_state, q, r, q, r) lts =
  let handles f = match name with
    | "doubler" -> f = "double" || f = "quad"
    | "incr" -> f = "inc"
    | "loopy" -> f = "loop"
    | _ -> false
  in
  {
    name;
    dom = (fun (f, _) -> handles f);
    init = (fun q -> [ Start q ]);
    step =
      (fun s ->
        match s with
        | Start ("double", n) -> [ (Events.e0, Done (2 * n)) ]
        | Start ("inc", n) -> [ (Events.e0, Done (n + 1)) ]
        | Start ("loop", n) -> [ (Events.e0, Start ("loop", n)) ]
        | Start ("quad", _) -> []
        | Start _ -> []
        | Waiting _ -> []
        | Done _ -> []);
    at_external =
      (fun s ->
        match s with
        | Start ("quad", n) -> Some ("double", n)
        | _ -> None);
    after_external =
      (fun s ans ->
        match s with
        | Start ("quad", _) -> [ Done (2 * ans) ]
        | _ -> []);
    final = (fun s -> match s with Done r -> Some r | _ -> None);
  }

let doubler = toy_component "doubler"
let incr = toy_component "incr"
let loopy = toy_component "loopy"

let run_toy lts ?(oracle = fun _ -> None) q =
  run ~fuel:1000 lts ~oracle q

let unit_tests =
  [
    Alcotest.test_case "direct computation" `Quick (fun () ->
        match run_toy doubler ("double", 21) with
        | Final (_, r) -> checki "42" 42 r
        | _ -> Alcotest.fail "expected final");
    Alcotest.test_case "refused outside domain" `Quick (fun () ->
        check "refused" true (run_toy doubler ("inc", 1) = Refused));
    Alcotest.test_case "environment answers external call" `Quick (fun () ->
        let oracle (f, n) = if f = "double" then Some (2 * n) else None in
        match run_toy doubler ~oracle ("quad", 5) with
        | Final (_, r) -> checki "20" 20 r
        | _ -> Alcotest.fail "expected final");
    Alcotest.test_case "env refusal reported" `Quick (fun () ->
        match run_toy doubler ("quad", 5) with
        | Env_stuck (_, ("double", 5)) -> ()
        | _ -> Alcotest.fail "expected env_stuck");
    Alcotest.test_case "divergence consumes fuel" `Quick (fun () ->
        match run_toy loopy ("loop", 0) with
        | Out_of_fuel _ -> ()
        | _ -> Alcotest.fail "expected out of fuel");
    Alcotest.test_case "run_to_interaction finds external state" `Quick
      (fun () ->
        match doubler.init ("quad", 3) with
        | [ s0 ] -> (
          match run_to_interaction ~fuel:100 doubler s0 with
          | _, Iexternal (("double", 3), _) -> ()
          | _ -> Alcotest.fail "expected external")
        | _ -> Alcotest.fail "expected one initial state");
  ]

(* Horizontal composition: [quad] of the doubler resolves internally once
   composed with itself; composing with [incr] widens the domain. *)
let hcomp_tests =
  [
    Alcotest.test_case "push/pop resolves internal call" `Quick (fun () ->
        let both = Hcomp.compose doubler incr in
        (* quad calls double, which the composition itself accepts. *)
        match run_toy both ("quad", 5) with
        | Final (_, r) -> checki "20" 20 r
        | o ->
          Alcotest.failf "expected final, got %a"
            (pp_outcome Format.pp_print_int) o);
    Alcotest.test_case "union of domains" `Quick (fun () ->
        let both = Hcomp.compose doubler incr in
        check "doubler side" true (both.dom ("double", 0));
        check "incr side" true (both.dom ("inc", 0));
        check "neither" false (both.dom ("dec", 0)));
    Alcotest.test_case "x°: unknown calls escape (Fig. 5)" `Quick (fun () ->
        (* a quad-only component whose double must come from outside *)
        let both = Hcomp.compose doubler loopy in
        let oracle (f, n) = if f = "inc" then Some (n + 1) else None in
        match run ~fuel:1000 both ~oracle ("quad", 1) with
        | Final (_, r) -> checki "internal resolution preferred" 4 r
        | _ -> Alcotest.fail "expected final");
    Alcotest.test_case "compose_all agrees with binary compose" `Quick
      (fun () ->
        let nary = Hcomp.compose_all [| doubler; incr |] in
        let bin = Hcomp.compose doubler incr in
        List.iter
          (fun q ->
            let o1 = run_toy nary q and o2 = run_toy bin q in
            let same =
              match (o1, o2) with
              | Final (_, a), Final (_, b) -> a = b
              | Refused, Refused -> true
              | _ -> false
            in
            check "agree" true same)
          [ ("double", 3); ("quad", 3); ("inc", 7) ]);
    Alcotest.test_case "associativity of ⊕ (behavioral)" `Quick (fun () ->
        let l1 = Hcomp.compose (Hcomp.compose doubler incr) loopy in
        let l2 = Hcomp.compose doubler (Hcomp.compose incr loopy) in
        List.iter
          (fun q ->
            let o1 = run_toy l1 q and o2 = run_toy l2 q in
            let same =
              match (o1, o2) with
              | Final (_, a), Final (_, b) -> a = b
              | Refused, Refused -> true
              | Out_of_fuel _, Out_of_fuel _ -> true
              | _ -> false
            in
            check "agree" true same)
          [ ("double", 3); ("quad", 3); ("inc", 7); ("loop", 0) ]);
  ]

(* Layered composition (§3.5): calls flow downward only. *)
let vcomp_tests =
  [
    Alcotest.test_case "layered call flows down" `Quick (fun () ->
        (* doubler on top of incr: quad's outgoing call has nowhere to go
           (incr does not serve double) — stuck; but doubler's own direct
           questions still work. *)
        let stack = Vcomp.layer doubler incr in
        (match run_toy stack ("double", 10) with
        | Final (_, r) -> checki "20" 20 r
        | _ -> Alcotest.fail "expected final");
        match run_toy stack ("quad", 10) with
        | Goes_wrong _ -> ()
        | _ -> Alcotest.fail "expected stuck (call not served below)");
    Alcotest.test_case "layered serving" `Quick (fun () ->
        (* quad served by a lower layer providing double. *)
        let stack = Vcomp.layer doubler doubler in
        match run_toy stack ("quad", 6) with
        | Final (_, r) -> checki "24" 24 r
        | _ -> Alcotest.fail "expected final");
    Alcotest.test_case "lower layer's externals escape" `Quick (fun () ->
        (* top quad -> bottom quad? bottom only; build: top = doubler
           (quad calls double); bottom = component that forwards. *)
        let stack = Vcomp.layer doubler loopy in
        match run_toy stack ("quad", 1) with
        | Goes_wrong _ -> ()
        | _ -> Alcotest.fail "expected stuck");
  ]

let closed_tests =
  [
    Alcotest.test_case "closing an open semantics (Table 4)" `Quick (fun () ->
        let closed =
          Closed.close doubler ~entry:("double", 21)
            ~decode:(fun r -> Some (Int32.of_int r))
        in
        match run ~fuel:100 closed ~oracle:(fun _ -> None) () with
        | Final (_, code) -> check "42" true (code = 42l)
        | _ -> Alcotest.fail "expected final");
  ]

(* Robustness edges of the interpreter: fuel exhaustion boundaries,
   oracle refusal (None) both at and after the first interaction, and
   the [check_reply] hook that diagnoses convention-violating oracle
   answers as [Env_violation] rather than resuming on garbage. *)
let robustness_tests =
  [
    Alcotest.test_case "fuel 0 is exhausted immediately" `Quick (fun () ->
        match run ~fuel:0 doubler ~oracle:(fun _ -> None) ("double", 21) with
        | Out_of_fuel _ -> ()
        | o ->
          Alcotest.failf "expected out of fuel, got %a"
            (pp_outcome Format.pp_print_int) o);
    Alcotest.test_case "just enough fuel completes" `Quick (fun () ->
        match run ~fuel:3 doubler ~oracle:(fun _ -> None) ("double", 21) with
        | Final (_, r) -> checki "42" 42 r
        | o ->
          Alcotest.failf "expected final, got %a"
            (pp_outcome Format.pp_print_int) o);
    Alcotest.test_case "oracle None -> Env_stuck carries the question" `Quick
      (fun () ->
        match run ~fuel:100 doubler ~oracle:(fun _ -> None) ("quad", 7) with
        | Env_stuck (_, ("double", 7)) -> ()
        | o ->
          Alcotest.failf "expected env-stuck on (double,7), got %a"
            (pp_outcome Format.pp_print_int) o);
    Alcotest.test_case "selective oracle: answers one call, refuses next"
      `Quick (fun () ->
        (* an oracle that answers only the first question *)
        let asked = ref 0 in
        let oracle (f, n) =
          asked := !asked + 1;
          if !asked = 1 && f = "double" then Some (2 * n) else None
        in
        (match run ~fuel:100 doubler ~oracle ("quad", 5) with
        | Final (_, r) -> checki "20" 20 r
        | _ -> Alcotest.fail "expected final");
        match run ~fuel:100 doubler ~oracle ("quad", 5) with
        | Env_stuck (_, _) -> ()
        | _ -> Alcotest.fail "expected env-stuck on the second run");
    Alcotest.test_case "check_reply rejection -> Env_violation" `Quick
      (fun () ->
        let oracle (f, n) = if f = "double" then Some (2 * n) else None in
        let check_reply _ _ = Error "answer smells wrong" in
        match run ~fuel:100 ~check_reply doubler ~oracle ("quad", 5) with
        | Env_violation (_, why) ->
          check "reason" true (why = "answer smells wrong")
        | o ->
          Alcotest.failf "expected env-violation, got %a"
            (pp_outcome Format.pp_print_int) o);
    Alcotest.test_case "check_reply acceptance resumes normally" `Quick
      (fun () ->
        let oracle (f, n) = if f = "double" then Some (2 * n) else None in
        let called = ref 0 in
        let check_reply _ _ =
          called := !called + 1;
          Ok ()
        in
        (match run ~fuel:100 ~check_reply doubler ~oracle ("quad", 5) with
        | Final (_, r) -> checki "20" 20 r
        | _ -> Alcotest.fail "expected final");
        checki "checked once" 1 !called);
    Alcotest.test_case "check_reply unused without interactions" `Quick
      (fun () ->
        let called = ref 0 in
        let check_reply _ _ =
          called := !called + 1;
          Ok ()
        in
        (match
           run ~fuel:100 ~check_reply doubler
             ~oracle:(fun _ -> None)
             ("double", 4)
         with
        | Final (_, r) -> checki "8" 8 r
        | _ -> Alcotest.fail "expected final");
        checki "never checked" 0 !called);
    Alcotest.test_case "selective check_reply: violation after good replies"
      `Quick (fun () ->
        (* a 2-call chain: quad(n) asks double(n); make a component that
           asks twice by composing — simpler: drive doubler twice with a
           stateful checker that rejects the second answer. *)
        let oracle (f, n) = if f = "double" then Some (2 * n) else None in
        let nth = ref 0 in
        let check_reply _ _ =
          nth := !nth + 1;
          if !nth >= 2 then Error "second answer rejected" else Ok ()
        in
        (match run ~fuel:100 ~check_reply doubler ~oracle ("quad", 1) with
        | Final _ -> ()
        | _ -> Alcotest.fail "first run should pass");
        match run ~fuel:100 ~check_reply doubler ~oracle ("quad", 1) with
        | Env_violation (_, why) ->
          check "reason" true (why = "second answer rejected")
        | _ -> Alcotest.fail "second run should be diagnosed");
  ]

(* Property: in ⊕, every behavior of a component on its own domain is
   preserved (no interference) — a lightweight take on Thm. 3.4. *)
let prop_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck.Test.make ~name:"⊕ preserves standalone behavior" ~count:100
        (QCheck.int_bound 1000) (fun n ->
          let alone = run_toy doubler ("double", n) in
          let composed = run_toy (Hcomp.compose doubler incr) ("double", n) in
          match (alone, composed) with
          | Final (_, a), Final (_, b) -> a = b
          | _ -> false);
      QCheck.Test.make ~name:"⊕ resolves what the oracle would" ~count:100
        (QCheck.int_bound 1000) (fun n ->
          let oracle (f, k) = if f = "double" then Some (2 * k) else None in
          let with_env = run_toy doubler ~oracle ("quad", n) in
          let composed = run_toy (Hcomp.compose doubler incr) ("quad", n) in
          match (with_env, composed) with
          | Final (_, a), Final (_, b) -> a = b
          | _ -> false);
    ]

let suite =
  ( "smallstep",
    unit_tests @ hcomp_tests @ vcomp_tests @ closed_tests @ robustness_tests
    @ prop_tests )
