(** Differential tests for the interval/chunked memory representation:
    [Memory.Mem] is executed side by side with [Mem_oracle] (the previous
    per-byte implementation) on random operation sequences, and every
    observable — operation success, returned values, per-offset
    permissions and contents, block bounds — must agree. This is the
    validation harness for the [Mem] hot-path rewrite: the representation
    changed, the semantics must not.

    Also contains the regression tests for the [grant_perm] bounds bug
    (granting outside [lo, hi) used to mint permissions out of bounds)
    and the representation test that alloc/free of a large block never
    materializes per-offset permission entries. *)

open Memory
open Memory.Values
open Memory.Memdata

let check = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Operation language                                                  *)
(* ------------------------------------------------------------------ *)

type op =
  | OAlloc of int * int
  | OFree of int * int * int  (** block, lo, hi *)
  | ODropRange of int * int * int
  | ODropPerm of int * int * int * Mem.permission
  | OGrant of int * int * int * Mem.permission
  | OStore of chunk * int * int * value
  | OStorebytes of int * int * int list
  | OLoad of chunk * int * int
  | OLoadbytes of int * int * int

(* What a step observably did; compared between the two implementations. *)
type outcome =
  | ODone of bool  (** operation succeeded *)
  | OVal of value option
  | OBytes of memval list option

let step_new (m : Mem.t) : op -> Mem.t * outcome = function
  | OAlloc (lo, hi) ->
    let m, _ = Mem.alloc m lo hi in
    (m, ODone true)
  | OFree (b, lo, hi) -> (
    match Mem.free m b lo hi with
    | Some m' -> (m', ODone true)
    | None -> (m, ODone false))
  | ODropRange (b, lo, hi) -> (
    match Mem.drop_range m b lo hi with
    | Some m' -> (m', ODone true)
    | None -> (m, ODone false))
  | ODropPerm (b, lo, hi, p) -> (
    match Mem.drop_perm m b lo hi p with
    | Some m' -> (m', ODone true)
    | None -> (m, ODone false))
  | OGrant (b, lo, hi, p) -> (
    match Mem.grant_perm m b lo hi p with
    | Some m' -> (m', ODone true)
    | None -> (m, ODone false))
  | OStore (chunk, b, ofs, v) -> (
    match Mem.store chunk m b ofs v with
    | Some m' -> (m', ODone true)
    | None -> (m, ODone false))
  | OStorebytes (b, ofs, bytes) -> (
    match Mem.storebytes m b ofs (List.map (fun x -> Byte x) bytes) with
    | Some m' -> (m', ODone true)
    | None -> (m, ODone false))
  | OLoad (chunk, b, ofs) -> (m, OVal (Mem.load chunk m b ofs))
  | OLoadbytes (b, ofs, n) -> (m, OBytes (Mem.loadbytes m b ofs n))

let step_old (m : Mem_oracle.t) : op -> Mem_oracle.t * outcome = function
  | OAlloc (lo, hi) ->
    let m, _ = Mem_oracle.alloc m lo hi in
    (m, ODone true)
  | OFree (b, lo, hi) -> (
    match Mem_oracle.free m b lo hi with
    | Some m' -> (m', ODone true)
    | None -> (m, ODone false))
  | ODropRange (b, lo, hi) -> (
    match Mem_oracle.drop_range m b lo hi with
    | Some m' -> (m', ODone true)
    | None -> (m, ODone false))
  | ODropPerm (b, lo, hi, p) -> (
    match Mem_oracle.drop_perm m b lo hi p with
    | Some m' -> (m', ODone true)
    | None -> (m, ODone false))
  | OGrant (b, lo, hi, p) -> (
    match Mem_oracle.grant_perm m b lo hi p with
    | Some m' -> (m', ODone true)
    | None -> (m, ODone false))
  | OStore (chunk, b, ofs, v) -> (
    match Mem_oracle.store chunk m b ofs v with
    | Some m' -> (m', ODone true)
    | None -> (m, ODone false))
  | OStorebytes (b, ofs, bytes) -> (
    match Mem_oracle.storebytes m b ofs (List.map (fun x -> Byte x) bytes) with
    | Some m' -> (m', ODone true)
    | None -> (m, ODone false))
  | OLoad (chunk, b, ofs) -> (m, OVal (Mem_oracle.load chunk m b ofs))
  | OLoadbytes (b, ofs, n) -> (m, OBytes (Mem_oracle.loadbytes m b ofs n))

(* Observable state: bounds, permission and byte at every offset of a
   window covering all generated ranges, for every block ever allocated
   (plus one invalid id on each side). *)
let obs_window = List.init 72 (fun i -> i - 20)

let observe_new (m : Mem.t) =
  List.init
    (Mem.nextblock m + 1)
    (fun b ->
      ( Mem.block_bounds m b,
        List.map (fun ofs -> (Mem.perm_at m b ofs, Mem.contents_at m b ofs)) obs_window
      ))

let observe_old (m : Mem_oracle.t) =
  List.init
    (Mem_oracle.nextblock m + 1)
    (fun b ->
      ( Mem_oracle.block_bounds m b,
        List.map
          (fun ofs -> (Mem_oracle.perm_at m b ofs, Mem_oracle.contents_at m b ofs))
          obs_window ))

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let gen_perm =
  QCheck.Gen.oneofl [ Mem.Nonempty; Mem.Readable; Mem.Writable; Mem.Freeable ]

let gen_chunk =
  QCheck.Gen.oneofl
    [ Mint8signed; Mint8unsigned; Mint16signed; Mint16unsigned; Mint32;
      Mint64 ]

let gen_block = QCheck.Gen.int_range 0 4
let gen_ofs = QCheck.Gen.int_range (-16) 44

let gen_op : op QCheck.Gen.t =
  let open QCheck.Gen in
  let range = pair gen_ofs gen_ofs in
  frequency
    [
      (1, map (fun (lo, hi) -> OAlloc (lo, hi)) range);
      (2, map2 (fun b (lo, hi) -> OFree (b, lo, hi)) gen_block range);
      (2, map2 (fun b (lo, hi) -> ODropRange (b, lo, hi)) gen_block range);
      ( 2,
        map3
          (fun b (lo, hi) p -> ODropPerm (b, lo, hi, p))
          gen_block range gen_perm );
      ( 3,
        map3 (fun b (lo, hi) p -> OGrant (b, lo, hi, p)) gen_block range
          gen_perm );
      ( 4,
        map3
          (fun chunk (b, ofs) v -> OStore (chunk, b, ofs, Vint (Int32.of_int v)))
          gen_chunk (pair gen_block gen_ofs) (int_bound 1_000_000) );
      ( 2,
        map3
          (fun b ofs bytes -> OStorebytes (b, ofs, bytes))
          gen_block gen_ofs
          (list_size (int_range 0 10) (int_bound 255)) );
      ( 3,
        map3 (fun chunk b ofs -> OLoad (chunk, b, ofs)) gen_chunk gen_block
          gen_ofs );
      ( 2,
        map3 (fun b ofs n -> OLoadbytes (b, ofs, n)) gen_block gen_ofs
          (int_range (-2) 12) );
    ]

let pp_op op =
  match op with
  | OAlloc (lo, hi) -> Printf.sprintf "alloc [%d,%d)" lo hi
  | OFree (b, lo, hi) -> Printf.sprintf "free b%d [%d,%d)" b lo hi
  | ODropRange (b, lo, hi) -> Printf.sprintf "drop_range b%d [%d,%d)" b lo hi
  | ODropPerm (b, lo, hi, _) -> Printf.sprintf "drop_perm b%d [%d,%d)" b lo hi
  | OGrant (b, lo, hi, _) -> Printf.sprintf "grant b%d [%d,%d)" b lo hi
  | OStore (_, b, ofs, _) -> Printf.sprintf "store b%d @%d" b ofs
  | OStorebytes (b, ofs, l) ->
    Printf.sprintf "storebytes b%d @%d len %d" b ofs (List.length l)
  | OLoad (_, b, ofs) -> Printf.sprintf "load b%d @%d" b ofs
  | OLoadbytes (b, ofs, n) -> Printf.sprintf "loadbytes b%d @%d len %d" b ofs n

let arb_ops =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map pp_op ops))
    QCheck.Gen.(list_size (int_range 1 40) gen_op)

(* A sequence biased toward the LM convention's argument-region protocol
   (Fig. 13): allocate a stack block, carve the argument region out
   ([free_args] = drop_range), then restore it ([mix] = grant_perm),
   with stores and loads interleaved. *)
let arb_carve_ops =
  let open QCheck.Gen in
  let seq =
    let* alo = int_range (-8) 0 in
    let* ahi = int_range 16 40 in
    let* clo = int_range alo ahi in
    let* chi = int_range clo ahi in
    let* middle = list_size (int_range 0 12) gen_op in
    let* p = gen_perm in
    return
      ((OAlloc (alo, ahi) :: ODropRange (1, clo, chi) :: middle)
      @ [ OGrant (1, clo, chi, p); OLoadbytes (1, alo, ahi - alo) ])
  in
  QCheck.make ~print:(fun ops -> String.concat "; " (List.map pp_op ops)) seq

let run_diff ops =
  let rec go mn mo = function
    | [] -> true
    | op :: rest ->
      let mn', rn = step_new mn op in
      let mo', ro = step_old mo op in
      if rn <> ro then
        QCheck.Test.fail_reportf "outcome mismatch on %s" (pp_op op)
      else if observe_new mn' <> observe_old mo' then
        QCheck.Test.fail_reportf "state mismatch after %s" (pp_op op)
      else go mn' mo' rest
  in
  go Mem.empty Mem_oracle.empty ops

let diff_random =
  QCheck.Test.make ~name:"random op sequences agree with per-byte oracle"
    ~count:300 arb_ops run_diff

let diff_carve =
  QCheck.Test.make
    ~name:"carve-then-grant round-trips agree with per-byte oracle (LM.mix)"
    ~count:300 arb_carve_ops run_diff

(* ------------------------------------------------------------------ *)
(* Regressions and representation checks                               *)
(* ------------------------------------------------------------------ *)

let unit_tests =
  [
    Alcotest.test_case "grant_perm clamps to block bounds" `Quick (fun () ->
        let m, b = Mem.alloc Mem.empty 0 16 in
        let m = Option.get (Mem.drop_range m b 0 16) in
        let m = Option.get (Mem.grant_perm m b (-8) 8 Mem.Freeable) in
        check "granted inside" true (Mem.valid_pointer m b 0);
        check "granted inside" true (Mem.valid_pointer m b 7);
        check "not granted outside (below lo)" false
          (Mem.valid_pointer m b (-1));
        check "not granted past requested hi" false (Mem.valid_pointer m b 8));
    Alcotest.test_case "grant_perm entirely outside bounds is rejected" `Quick
      (fun () ->
        let m, b = Mem.alloc Mem.empty 0 16 in
        check "above" true (Mem.grant_perm m b 16 32 Mem.Freeable = None);
        check "below" true (Mem.grant_perm m b (-8) 0 Mem.Freeable = None);
        check "missing block" true
          (Mem.grant_perm m (b + 7) 0 8 Mem.Freeable = None);
        check "empty range is a no-op" true
          (Mem.grant_perm m b 8 8 Mem.Freeable = Some m));
    Alcotest.test_case "alloc+free of a large block stays interval-backed"
      `Quick (fun () ->
        let m, b = Mem.alloc Mem.empty 0 65536 in
        check "no per-byte entries after alloc" true (Mem.perm_entries m b = 0);
        let m = Option.get (Mem.store Mint64 m b 1024 (Vlong 7L)) in
        check "no per-byte entries after store" true (Mem.perm_entries m b = 0);
        let m = Option.get (Mem.free m b 0 65536) in
        check "no per-byte entries after full free" true
          (Mem.perm_entries m b = 0));
    Alcotest.test_case "carving a sub-range materializes only that block"
      `Quick (fun () ->
        let m, b1 = Mem.alloc Mem.empty 0 64 in
        let m, b2 = Mem.alloc m 0 64 in
        let m = Option.get (Mem.drop_range m b1 8 16) in
        check "carved block has entries" true (Mem.perm_entries m b1 > 0);
        check "other block untouched" true (Mem.perm_entries m b2 = 0));
  ]

let suite =
  ( "mem-diff",
    unit_tests
    @ List.map QCheck_alcotest.to_alcotest [ diff_random; diff_carve ] )
