(** Tests for the adversarial-environment ("chaos") oracles: the
    wrappers themselves, the reply-side conformance checks they are
    caught by, and the end-to-end mode matrix run by the campaign. *)

open Memory.Values
module Li = Iface.Li
module Chaos = Faultinject.Chaos_oracle
module Campaign = Faultinject.Campaign
module Mtypes = Memory.Mtypes
module Mem = Memory.Mem

let check = Alcotest.(check bool)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let expect_error name needle = function
  | Ok () -> Alcotest.failf "%s: expected a conformance error" name
  | Error why ->
    check
      (Printf.sprintf "%s: %S mentions %S" name why needle)
      true (contains why needle)

(* a C-level query/reply pair for [main] *)
let cq =
  {
    Li.cq_vf = Vundef;
    cq_sg = Mtypes.signature_main;
    cq_args = [];
    cq_mem = Mem.empty;
  }

let good_cr = { Li.cr_res = Vint 3l; cr_mem = Mem.empty }

let conformance_c_tests =
  [
    Alcotest.test_case "well-typed reply conforms" `Quick (fun () ->
        check "ok" true (Chaos.conformance_c cq good_cr = Ok ()));
    Alcotest.test_case "ill-typed reply is rejected" `Quick (fun () ->
        expect_error "float for int" "ill-typed"
          (Chaos.conformance_c cq { good_cr with Li.cr_res = Vfloat 0.5 }));
    Alcotest.test_case "wild pointer is rejected even when well-typed" `Quick
      (fun () ->
        (* pointers have type [Tlong], so give the query a long result
           type: the reply then passes the typing check and must be
           caught by the injection check instead *)
        let q =
          { cq with Li.cq_sg = { Mtypes.sig_args = []; sig_res = Some Mtypes.Tlong } }
        in
        let r =
          { Li.cr_res = Vptr (Mem.nextblock Mem.empty + 64, 0); cr_mem = Mem.empty }
        in
        expect_error "wild long ptr" "outside the injection"
          (Chaos.conformance_c q r));
  ]

(* an A-level query/reply pair: caller registers with distinctive
   values, a reply that honors the convention *)
let result_reg = Li.Mreg (Target.Conventions.loc_result Mtypes.signature_main)

let aq_rs =
  let rs =
    Li.Pregfile.set_list
      [
        (Li.PC, Vlong 0x4000L);
        (Li.RA, Vlong 0x1000L);
        (Li.SP, Vptr (1, 128));
      ]
      Li.Pregfile.init
  in
  List.fold_left
    (fun rs (i, m) -> Li.Pregfile.set (Li.Mreg m) (Vint (Int32.of_int (100 + i))) rs)
    rs
    (List.mapi (fun i m -> (i, m)) Target.Machregs.callee_save_regs)

let aq = { Li.aq_rs; aq_mem = Mem.empty }

let good_ar =
  {
    Li.ar_rs =
      Li.Pregfile.set Li.PC (Li.Pregfile.get Li.RA aq_rs)
        (Li.Pregfile.set result_reg (Vint 7l) aq_rs);
    ar_mem = Mem.empty;
  }

let conformance_a_tests =
  [
    Alcotest.test_case "convention-respecting reply conforms" `Quick (fun () ->
        match Chaos.conformance_a aq good_ar with
        | Ok () -> ()
        | Error why -> Alcotest.failf "unexpected violation: %s" why);
    Alcotest.test_case "not returning to RA is a violation" `Quick (fun () ->
        let r =
          { good_ar with Li.ar_rs = Li.Pregfile.set Li.PC (Vlong 0x9999L) good_ar.Li.ar_rs }
        in
        expect_error "pc" "RA" (Chaos.conformance_a aq r));
    Alcotest.test_case "moving SP is a violation" `Quick (fun () ->
        let r =
          { good_ar with Li.ar_rs = Li.Pregfile.set Li.SP (Vptr (1, 0)) good_ar.Li.ar_rs }
        in
        expect_error "sp" "stack pointer" (Chaos.conformance_a aq r));
    Alcotest.test_case "clobbering a callee-save is a violation" `Quick
      (fun () ->
        let victim = List.hd Target.Machregs.callee_save_regs in
        let r =
          {
            good_ar with
            Li.ar_rs = Li.Pregfile.set (Li.Mreg victim) (Vint 0xDEADl) good_ar.Li.ar_rs;
          }
        in
        expect_error "clobber" "callee-save" (Chaos.conformance_a aq r));
    Alcotest.test_case "ill-typed result register is a violation" `Quick
      (fun () ->
        let r =
          { good_ar with Li.ar_rs = Li.Pregfile.set result_reg (Vfloat 0.5) good_ar.Li.ar_rs }
        in
        expect_error "result" "ill-typed" (Chaos.conformance_a aq r));
  ]

let wrapper_tests =
  [
    Alcotest.test_case "mode names round-trip" `Quick (fun () ->
        List.iter
          (fun m ->
            check (Chaos.mode_name m) true
              (Chaos.mode_of_name (Chaos.mode_name m) = Some m))
          Chaos.all_modes;
        check "unknown name" true (Chaos.mode_of_name "frobnicate" = None));
    Alcotest.test_case "refuse answers None, well-behaved passes through"
      `Quick (fun () ->
        let base _ = Some good_cr in
        check "refuse" true (Chaos.c_chaos Chaos.Refuse base cq = None);
        check "well-behaved" true
          (Chaos.c_chaos Chaos.Well_behaved base cq = Some good_cr));
    Alcotest.test_case "ill-typed wrapper breaks conformance" `Quick (fun () ->
        let base _ = Some good_cr in
        match Chaos.c_chaos Chaos.Ill_typed base cq with
        | None -> Alcotest.fail "ill-typed should still answer"
        | Some r -> (
          match Chaos.conformance_c cq r with
          | Error _ -> ()
          | Ok () -> Alcotest.fail "conformance must reject the reply"));
    Alcotest.test_case "a-level clobber wrapper breaks conformance" `Quick
      (fun () ->
        let base _ = Some good_ar in
        match Chaos.a_chaos Chaos.Clobber_callee_save base aq with
        | None -> Alcotest.fail "clobber should still answer"
        | Some r -> expect_error "clobber" "callee-save" (Chaos.conformance_a aq r));
    Alcotest.test_case "a-level wild-pointer wrapper breaks conformance" `Quick
      (fun () ->
        (* a long result type, so the wild pointer passes the typing
           check and must be caught by the injection check *)
        let sg = { Mtypes.sig_args = []; sig_res = Some Mtypes.Tlong } in
        let base _ = Some good_ar in
        match Chaos.a_chaos Chaos.Wild_pointer base aq with
        | None -> Alcotest.fail "wild-pointer should still answer"
        | Some r ->
          expect_error "wild" "outside the injection"
            (Chaos.conformance_a ~sg aq r));
    Alcotest.test_case "clobber vocabulary trashes every callee-save" `Quick
      (fun () ->
        let rs = Chaos.clobber_callee_saves aq_rs in
        List.iter
          (fun m ->
            check "clobbered" true
              (Li.Pregfile.get (Li.Mreg m) rs = Chaos.clobber_pattern))
          Target.Machregs.callee_save_regs;
        (* non-callee-save state is untouched *)
        check "sp intact" true
          (Li.Pregfile.get Li.SP rs = Li.Pregfile.get Li.SP aq_rs));
    Alcotest.test_case "burn-fuel clamps the fuel, others do not" `Quick
      (fun () ->
        Alcotest.(check int)
          "burnt" Chaos.burnt_fuel
          (Chaos.fuel_for Chaos.Burn_fuel ~fuel:1000);
        Alcotest.(check int) "intact" 1000 (Chaos.fuel_for Chaos.Refuse ~fuel:1000);
        (* burn-fuel leaves the reply itself untouched: starvation is
           the whole attack *)
        let base _ = Some good_ar in
        check "reply intact" true
          (Chaos.a_chaos Chaos.Burn_fuel base aq = Some good_ar));
  ]

let matrix_tests =
  [
    Alcotest.test_case "every chaos mode is diagnosed at both levels" `Slow
      (fun () ->
        let results = Campaign.run_chaos_modes () in
        Alcotest.(check int)
          "modes x levels" (2 * List.length Chaos.all_modes)
          (List.length results);
        List.iter
          (fun cr ->
            check
              (Printf.sprintf "%s@%s: %s"
                 (Chaos.mode_name cr.Campaign.cr_mode)
                 cr.Campaign.cr_level cr.Campaign.cr_outcome)
              true
              (Campaign.chaos_expectation cr.Campaign.cr_mode
                 cr.Campaign.cr_diagnosed))
          results;
        (* no mode may escape as an uncaught exception; the runner
           records those with a distinctive prefix *)
        check "no uncaught exceptions" true
          (List.for_all
             (fun cr -> not (contains cr.Campaign.cr_outcome "uncaught"))
             results));
  ]

let suite =
  ( "chaos",
    conformance_c_tests @ conformance_a_tests @ wrapper_tests @ matrix_tests )
