(** Test-suite glue around [Driver.Differential]. *)

include Driver.Differential

(** Alcotest case asserting the differential check passes and the final
    result is [Final expected]. *)
let diff_case ?options name src expected =
  Alcotest.test_case name `Quick (fun () ->
      match differential ?options src with
      | Error e -> Alcotest.failf "%s: %s" name e
      | Ok results -> (
        match results with
        | { outcome =
              Ok
                (Core.Smallstep.Final
                   (_, { Iface.Li.cr_res = Memory.Values.Vint n; _ }));
            _ }
          :: _ ->
          Alcotest.(check int32) name expected n
        | r :: _ ->
          Alcotest.failf "%s: source outcome %a" name pp_level_result r
        | [] -> Alcotest.fail "no results"))
