(** Differential tests for the allocation fast path and the
    direct-threaded interpreter (ISSUE 9).

    The linear-scan allocator is untrusted by design: every run is
    validated by [Alloc_check], with the graph allocator as the
    driver's fallback when validation rejects. These tests pin the
    three legs of that argument:
    - both allocators produce validator-accepted code on the same
      random corpus (so the fast path is not surviving on fallback);
    - a deliberately clobbered linear-scan assignment IS rejected by
      the validator, and the driver recovers through the graph
      fallback rather than miscompiling;
    - the pre-decoded direct-threaded Asm interpreter agrees with the
      naive instruction-at-a-time decoder, on random programs and on
      the examples/c corpus. *)

open Support

let check = Alcotest.(check bool)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Compile [src] and run its [main] under both Asm interpreters,
   rendering each outcome. *)
let run_both_interps src =
  let p = Cfrontend.Cparser.parse_program src in
  let symbols = Iface.Ast.prog_defs_names p in
  let arts = Errors.get (Driver.Compiler.compile p) in
  let q = Option.get (Driver.Runners.main_query ~symbols ~defs:p ()) in
  let render o = Format.asprintf "%a" Driver.Runners.pp_c_outcome o in
  let run sem =
    Result.map render
      (Driver.Runners.run_a_level
         (sem ~symbols arts.Driver.Compiler.asm)
         ~fuel:2_000_000 q)
  in
  (run Backend.Asm.semantics, run Backend.Asm.semantics_naive)

(* --- Allocator differential: both strategies satisfy the validator --- *)

(* The program shrinker drops whole lines, so shrink candidates can
   fail to parse; treat those as vacuously passing rather than letting
   the exception count as a new failure and derail minimization. *)
let parses src =
  match Cfrontend.Cparser.parse_program src with
  | _ -> true
  | exception Cfrontend.Cparser.Parse_error _ -> false

let allocators_validate =
  QCheck.Test.make ~name:"both allocators satisfy the validator" ~count:20
    Testlib.Test_gen.arb_program (fun src ->
      QCheck.assume (parses src);
      let p = Cfrontend.Cparser.parse_program src in
      let rtl = (Errors.get (Driver.Compiler.compile p)).Driver.Compiler.rtl in
      List.for_all
        (fun strat ->
          let name = Passes.Allocation.strategy_name strat in
          match
            Passes.Allocation.transf_program_with_assignments ~strategy:strat
              rtl
          with
          | Error e ->
            QCheck.Test.fail_reportf "%s allocation failed: %s@.--- program \
                                      ---@.%s" name e src
          | Ok (ltl, assigns) -> (
            match
              Passes.Alloc_check.validate_program ~assignments:assigns rtl ltl
            with
            | Ok () -> true
            | Error e ->
              QCheck.Test.fail_reportf
                "validator rejected %s: %s@.--- program ---@.%s" name e src))
        [ Passes.Allocation.Linear_scan; Passes.Allocation.Graph ])

(* --- Interpreter differential: threaded vs naive dispatch ------------ *)

let interpreters_agree =
  QCheck.Test.make ~name:"threaded and naive interpreters agree" ~count:15
    Testlib.Test_gen.arb_program (fun src ->
      QCheck.assume (parses src);
      let threaded, naive = run_both_interps src in
      if threaded = naive then true
      else
        QCheck.Test.fail_reportf "interpreters disagree@.--- program ---@.%s"
          src)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest [ allocators_validate; interpreters_agree ]

let unit_tests =
  [
    Alcotest.test_case
      "clobbered linear scan is rejected; the driver falls back" `Quick
      (fun () ->
        let src =
          "int mix(int x, int y) { int a = x + 1; int b = y + 2; int c = x * \
           y; return a * b + c; }\n\
           int main(void) { return mix(3, 4); }"
        in
        let p = Cfrontend.Cparser.parse_program src in
        let rtl = (Errors.get (Driver.Compiler.compile p)).Driver.Compiler.rtl in
        let clean_outcome, _ = run_both_interps src in
        Fun.protect
          ~finally:(fun () ->
            Passes.Allocation.clobber_linear_scan_for_test := false)
          (fun () ->
            Passes.Allocation.clobber_linear_scan_for_test := true;
            (* The clobbered allocator funnels every virtual register
               into the head of the pool; with three values live at
               once that assignment is wrong, and the validator — not
               any downstream crash — must be what catches it. *)
            (match
               Passes.Allocation.transf_program_with_assignments
                 ~strategy:Passes.Allocation.Linear_scan rtl
             with
            | Error _ -> ()
            | Ok (ltl, assigns) -> (
              match
                Passes.Alloc_check.validate_program ~assignments:assigns rtl
                  ltl
              with
              | Ok () ->
                Alcotest.fail "validator accepted a clobbered assignment"
              | Error _ -> ()));
            (* End to end, the same clobber is survivable: the driver
               retries with the graph allocator and counts the
               fallback. *)
            Obs.reset_all ();
            let arts =
              Obs.with_enabled (fun () ->
                  Errors.get (Driver.Compiler.compile p))
            in
            check "fallback counted" true
              (Obs.Metrics.get_counter "alloc.linear_scan_fallback" > 0);
            let fallback_outcome, _ = run_both_interps src in
            check "fallback compiles to the same behavior" true
              (fallback_outcome = clean_outcome);
            ignore arts));
    Alcotest.test_case "threaded and naive interpreters agree on examples/c"
      `Quick (fun () ->
        let dir = "../examples/c" in
        let files =
          Sys.readdir dir |> Array.to_list
          |> List.filter (fun f -> Filename.check_suffix f ".c")
          |> List.sort compare
        in
        check "corpus present" true (files <> []);
        List.iter
          (fun file ->
            let src = read_file (Filename.concat dir file) in
            let threaded, naive = run_both_interps src in
            check (file ^ ": interpreters agree") true (threaded = naive);
            check (file ^ ": run completed") true (Result.is_ok threaded))
          files);
  ]

let suite = ("allocdiff", qcheck_tests @ unit_tests)
