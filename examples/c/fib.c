/* Recursion + iteration agreeing on the same sequence. */
int fib_rec(int n) {
  if (n < 2) return n;
  return fib_rec(n - 1) + fib_rec(n - 2);
}

int fib_iter(int n) {
  int a = 0;
  int b = 1;
  int i;
  for (i = 0; i < n; i = i + 1) {
    int t = a + b;
    a = b;
    b = t;
  }
  return a;
}

int main(void) {
  int n;
  int bad = 0;
  for (n = 0; n < 15; n = n + 1) {
    if (fib_rec(n) != fib_iter(n)) bad = bad + 1;
  }
  return bad == 0 ? fib_iter(15) : -1;
}
