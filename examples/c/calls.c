/* Wide calls: more arguments than parameter registers, so the
   convention traffics in stack slots. */
int wide(int a, int b, int c, int d, int e, int f, int g, int h) {
  return (a - b) * 2 + (c - d) * 3 + (e - f) * 5 + (g - h) * 7;
}

int apply(int (*op)(int, int), int x, int y) { return op(x, y); }

int add(int x, int y) { return x + y; }
int sub(int x, int y) { return x - y; }

int main(void) {
  int w = wide(9, 4, 12, 5, 30, 11, 7, 2);
  int s = apply(add, w, 10) + apply(sub, w, 3);
  return s - w;
}
