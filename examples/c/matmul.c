/* Small fixed-size matrix product over global arrays. */
int a[3][3] = { { 1, 2, 3 }, { 4, 5, 6 }, { 7, 8, 9 } };
int b[3][3] = { { 9, 8, 7 }, { 6, 5, 4 }, { 3, 2, 1 } };
int c[3][3];

int main(void) {
  int i;
  int j;
  int k;
  for (i = 0; i < 3; i = i + 1)
    for (j = 0; j < 3; j = j + 1) {
      int acc = 0;
      for (k = 0; k < 3; k = k + 1) acc = acc + a[i][k] * b[k][j];
      c[i][j] = acc;
    }
  int trace = 0;
  for (i = 0; i < 3; i = i + 1) trace = trace + c[i][i];
  return trace;
}
