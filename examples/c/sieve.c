/* Sieve of Eratosthenes over a global byte array. */
char composite[100];

int main(void) {
  int i;
  int j;
  int count = 0;
  for (i = 2; i < 100; i = i + 1) {
    if (!composite[i]) {
      count = count + 1;
      for (j = i + i; j < 100; j = j + i) composite[j] = 1;
    }
  }
  return count; /* 25 primes below 100 */
}
